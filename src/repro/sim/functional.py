"""Functional (architectural) simulator for MGA programs.

The functional simulator is the golden model: it executes a program's
architectural semantics, producing final register/memory state, a basic-block
frequency profile and a committed-order dynamic trace for the timing model.

It executes both unmodified programs and mini-graph rewritten programs.  For
the latter it evaluates handles directly from the
:class:`~repro.minigraph.mgt.MiniGraphTable` templates — interior values are
computed without touching the architectural register file, exactly as the
mini-graph microarchitecture treats them as transient.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..isa.instruction import INSTRUCTION_BYTES, Instruction
from ..isa.opcodes import OpClass
from ..isa.registers import NUM_ARCH_REGS, NUM_INT_REGS, is_zero_reg
from ..minigraph.mgt import MiniGraphTable
from ..minigraph.templates import OperandKind, OperandRef
from ..program.basic_block import BlockIndex
from ..program.profile import BlockProfile
from ..program.program import Program
from ..program.weakcache import PerProgramCache
from .memory import Memory
from .trace import TF_HAS_EA, TF_LOAD, TF_STORE, Trace, pack_flags

_WORD_MASK = 0xFFFFFFFFFFFFFFFF


class SimulationError(RuntimeError):
    """Raised on execution errors (undefined PCs, bad handles, ...)."""


def _wrap(value: int) -> int:
    return value & _WORD_MASK


def _signed(value: int) -> int:
    value &= _WORD_MASK
    return value - (1 << 64) if value & (1 << 63) else value


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & (1 << 31) else value


@dataclass
class FunctionalResult:
    """Outcome of one functional simulation run.

    Attributes:
        program_name: name of the executed program.
        instructions_executed: original-instruction count (handles expand).
        entries_committed: committed trace entries (handles count once).
        halted: True if the program executed ``halt``; False if the
            instruction budget expired first.
        registers: final architectural register values.
        memory: final memory image.
        profile: basic-block frequency profile of the run.
        trace: committed-order dynamic trace (None if tracing was disabled).
    """

    program_name: str
    instructions_executed: int
    entries_committed: int
    halted: bool
    registers: List[int]
    memory: Memory
    profile: BlockProfile
    trace: Optional[Trace]

    def register(self, reg: int) -> int:
        """Final value of architectural register ``reg``."""
        return self.registers[reg]

    def checksum(self) -> int:
        """Combined register/memory checksum used by equivalence tests."""
        reg_sum = 0
        for reg, value in enumerate(self.registers):
            if not is_zero_reg(reg):
                reg_sum = _wrap(reg_sum + (reg * 2654435761 ^ value))
        return _wrap(reg_sum + self.memory.checksum())


# ---------------------------------------------------------------------------
# ALU semantics, shared by singleton execution and handle evaluation.
# Each function maps (a, b, imm) -> 64-bit result, where ``b`` is the second
# register operand for register forms and ``imm`` is used by immediate forms.
# ---------------------------------------------------------------------------

def _alu_semantics() -> Dict[str, Callable[[int, int, Optional[int]], int]]:
    def shift_amount(value: int) -> int:
        return value & 0x3F

    table: Dict[str, Callable[[int, int, Optional[int]], int]] = {
        "addl": lambda a, b, imm: _wrap(_signed32(_signed32(a) + _signed32(b))),
        "addli": lambda a, b, imm: _wrap(_signed32(_signed32(a) + imm)),
        "addq": lambda a, b, imm: _wrap(a + b),
        "addqi": lambda a, b, imm: _wrap(a + imm),
        "subl": lambda a, b, imm: _wrap(_signed32(_signed32(a) - _signed32(b))),
        "subli": lambda a, b, imm: _wrap(_signed32(_signed32(a) - imm)),
        "subq": lambda a, b, imm: _wrap(a - b),
        "subqi": lambda a, b, imm: _wrap(a - imm),
        "and": lambda a, b, imm: a & b,
        "andi": lambda a, b, imm: a & _wrap(imm),
        "bis": lambda a, b, imm: a | b,
        "bisi": lambda a, b, imm: a | _wrap(imm),
        "xor": lambda a, b, imm: a ^ b,
        "xori": lambda a, b, imm: a ^ _wrap(imm),
        "bic": lambda a, b, imm: a & _wrap(~b),
        "ornot": lambda a, b, imm: a | _wrap(~b),
        "sll": lambda a, b, imm: _wrap(a << shift_amount(b)),
        "slli": lambda a, b, imm: _wrap(a << shift_amount(imm)),
        "srl": lambda a, b, imm: a >> shift_amount(b),
        "srli": lambda a, b, imm: a >> shift_amount(imm),
        "sra": lambda a, b, imm: _wrap(_signed(a) >> shift_amount(b)),
        "srai": lambda a, b, imm: _wrap(_signed(a) >> shift_amount(imm)),
        "cmpeq": lambda a, b, imm: int(a == b),
        "cmpeqi": lambda a, b, imm: int(a == _wrap(imm)),
        "cmplt": lambda a, b, imm: int(_signed(a) < _signed(b)),
        "cmplti": lambda a, b, imm: int(_signed(a) < imm),
        "cmple": lambda a, b, imm: int(_signed(a) <= _signed(b)),
        "cmplei": lambda a, b, imm: int(_signed(a) <= imm),
        "cmpult": lambda a, b, imm: int(a < b),
        "cmpulti": lambda a, b, imm: int(a < _wrap(imm)),
        "cmovne": lambda a, b, imm: b,   # applied conditionally by the caller
        "cmoveq": lambda a, b, imm: b,   # applied conditionally by the caller
        "s4addl": lambda a, b, imm: _wrap(_signed32((_signed(a) << 2) + _signed(b))),
        "s8addl": lambda a, b, imm: _wrap(_signed32((_signed(a) << 3) + _signed(b))),
        "s4addli": lambda a, b, imm: _wrap(_signed32((_signed(a) << 2) + imm)),
        "s8addli": lambda a, b, imm: _wrap(_signed32((_signed(a) << 3) + imm)),
        "lda": lambda a, b, imm: _wrap(a + imm),
        "ldah": lambda a, b, imm: _wrap(a + (imm << 16)),
        "extbl": lambda a, b, imm: (a >> ((b & 0x7) * 8)) & 0xFF,
        "extbli": lambda a, b, imm: (a >> ((imm & 0x7) * 8)) & 0xFF,
        "insbl": lambda a, b, imm: _wrap((a & 0xFF) << ((b & 0x7) * 8)),
        "mskbl": lambda a, b, imm: a & _wrap(~(0xFF << ((b & 0x7) * 8))),
        "zapnot": lambda a, b, imm: _zapnot(a, imm),
        "sextb": lambda a, b, imm: _wrap(_sign_extend(a, 8)),
        "sextw": lambda a, b, imm: _wrap(_sign_extend(a, 16)),
        "popcount": lambda a, b, imm: bin(a).count("1"),
        "clz": lambda a, b, imm: 64 - a.bit_length(),
        "mull": lambda a, b, imm: _wrap(_signed32(_signed32(a) * _signed32(b))),
        "mulq": lambda a, b, imm: _wrap(a * b),
        "mulli": lambda a, b, imm: _wrap(_signed32(_signed32(a) * imm)),
    }
    return table


def _zapnot(value: int, mask: Optional[int]) -> int:
    result = 0
    mask = mask or 0
    for byte in range(8):
        if mask & (1 << byte):
            result |= value & (0xFF << (byte * 8))
    return result


def _sign_extend(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    return value - (1 << bits) if value & (1 << (bits - 1)) else value


_ALU = _alu_semantics()

#: Memory access sizes by opcode.
_ACCESS_SIZE = {"ldq": 8, "ldl": 4, "ldwu": 2, "ldbu": 1, "ldt": 8,
                "stq": 8, "stl": 4, "stb": 1, "stt": 8}
_UNSIGNED_LOADS = {"ldbu", "ldwu", "ldq", "ldt"}


#: Per-opcode branch predicates, resolved once at plan-build time instead of
#: per committed branch; :func:`_branch_taken` delegates here.
_BRANCH_FNS: Dict[str, Callable[[int], bool]] = {
    "beq": lambda v: v == 0,
    "bne": lambda v: v != 0,
    "blt": lambda v: _signed(v) < 0,
    "bge": lambda v: _signed(v) >= 0,
    "bgt": lambda v: _signed(v) > 0,
    "ble": lambda v: _signed(v) <= 0,
}


def _branch_taken(op: str, value: int) -> bool:
    try:
        return _BRANCH_FNS[op](value)
    except KeyError:
        raise SimulationError(f"not a conditional branch: {op}") from None

#: Per-opcode FP semantics (FP values are carried as 64-bit integers; the
#: workloads use FP only lightly, so fixed-point-style integer arithmetic is
#: sufficient and keeps the register file uniform).
_FP_FNS: Dict[str, Callable[[int, int], int]] = {
    "addt": lambda a, b: _wrap(a + b),
    "subt": lambda a, b: _wrap(a - b),
    "mult": lambda a, b: _wrap(a * b),
    "divt": lambda a, b: _wrap(a // b) if b else 0,
    "sqrtt": lambda a, b: _wrap(int(_signed(a) ** 0.5)) if _signed(a) > 0 else 0,
    "cmptlt": lambda a, b: int(_signed(a) < _signed(b)),
    "cvtqt": lambda a, b: a,
    "cvttq": lambda a, b: a,
}


# ---------------------------------------------------------------------------
# Precompiled execution plans.
#
# The interpreter loop used to re-derive everything per committed instruction
# — opcode spec, operand usage, basic block, trace-entry fields — although all
# of it is static.  A *plan* precompiles each static instruction into a flat
# dispatch tuple (kind code first) and interns the packed trace *rows* whose
# fields are fully static (ALU results, both branch outcomes, direct
# jumps/calls), so the hot loop is a table dispatch plus raw list/dict
# operations.  The emitted rows are column value tuples
# ``(pc, index, size, next_pc, flags, effective_address, mgid)`` that the
# columnar :class:`~repro.sim.trace.Trace` transposes in one pass at the end
# of the run; the basic-block profile is likewise derived from the committed
# index column in one :class:`collections.Counter` pass (using the plan's
# per-index block id / profile increment tables) instead of two dict
# operations per committed instruction.  Plans are cached per program in a
# process-wide id-keyed weak map, mirroring :mod:`repro.uarch.decode`.
# ---------------------------------------------------------------------------

_K_NOP = 0
_K_ALU = 1
_K_CMOVNE = 2
_K_CMOVEQ = 3
_K_FP = 4
_K_LOAD = 5
_K_STORE = 6
_K_BRANCH = 7
_K_JUMP = 8
_K_CALL = 9
_K_INDIRECT = 10
_K_HALT = 11
_K_HANDLE = 12


def _norm_reg(reg: Optional[int]) -> Optional[int]:
    """Register number for reads/writes, None if absent or hardwired zero."""
    if reg is None or is_zero_reg(reg):
        return None
    return reg


#: Static row flags, resolved once at plan-build time.
_ROW_PLAIN = 0
_ROW_TAKEN = pack_flags(True, True, False, False, False, False)
_ROW_FALL = pack_flags(True, False, False, False, False, False)
_ROW_HALT = pack_flags(True, None, False, False, False, False)
_ROW_LOAD = TF_LOAD | TF_HAS_EA
_ROW_STORE = TF_STORE | TF_HAS_EA


@dataclass
class _Plan:
    """Compiled dispatch steps plus the per-index profile tables.

    ``bids[i]`` / ``incs[i]`` are the basic-block id and profile increment of
    static instruction ``i``; the run loop never touches them — the block
    profile is reconstructed from the committed index column afterwards.
    """

    steps: List[Tuple[Any, ...]]
    bids: List[int]
    incs: List[int]


def _build_plan(program: Program) -> _Plan:
    """Compile ``program`` into per-index dispatch tuples.

    The returned plan references instructions and interned packed trace rows
    but never the program itself, so the plan cache cannot keep programs
    alive.
    """
    block_index = BlockIndex(program)
    text_base = program.text_base
    steps: List[Tuple[Any, ...]] = []
    bids: List[int] = []
    incs: List[int] = []
    for index, insn in enumerate(program.instructions):
        pc = text_base + index * INSTRUCTION_BYTES
        next_pc = pc + INSTRUCTION_BYTES
        spec = insn.spec
        block = block_index.block_of_index(index)
        first_useful = FunctionalSimulator._first_useful_index(block)
        bids.append(block.block_id)
        incs.append(1 if index in (block.start_index, first_useful) else 0)
        rd = _norm_reg(insn.rd)
        rs1 = _norm_reg(insn.rs1)
        rs2 = _norm_reg(insn.rs2)

        if spec.op_class is OpClass.NOP:
            steps.append((_K_NOP,))
        elif spec.op_class is OpClass.MG:
            steps.append((_K_HANDLE, insn))
        elif spec.op_class in (OpClass.ALU, OpClass.MUL):
            row = (pc, index, 1, next_pc, _ROW_PLAIN, 0, -1)
            if insn.op == "cmovne":
                steps.append((_K_CMOVNE, rd, rs1, rs2, row))
            elif insn.op == "cmoveq":
                steps.append((_K_CMOVEQ, rd, rs1, rs2, row))
            else:
                steps.append((_K_ALU, _ALU[insn.op], rd, rs1, rs2, insn.imm,
                              row))
        elif spec.is_fp:
            row = (pc, index, 1, next_pc, _ROW_PLAIN, 0, -1)
            try:
                fp_fn = _FP_FNS[insn.op]
            except KeyError:
                raise SimulationError(f"unknown FP opcode {insn.op}") from None
            steps.append((_K_FP, fp_fn, rd, rs1, rs2, row))
        elif spec.is_load:
            steps.append((_K_LOAD, _ACCESS_SIZE[insn.op],
                          insn.op not in _UNSIGNED_LOADS, rd, rs1,
                          insn.imm or 0, pc, next_pc, index))
        elif spec.is_store:
            steps.append((_K_STORE, _ACCESS_SIZE[insn.op], rs1, rs2,
                          insn.imm or 0, pc, next_pc, index))
        elif spec.op_class is OpClass.BRANCH:
            target = insn.imm
            taken_row = (pc, index, 1, target, _ROW_TAKEN, 0, -1)
            fall_row = (pc, index, 1, next_pc, _ROW_FALL, 0, -1)
            steps.append((_K_BRANCH, _BRANCH_FNS[insn.op], rs1, target,
                          taken_row, fall_row))
        elif spec.op_class is OpClass.JUMP:
            row = (pc, index, 1, insn.imm, _ROW_TAKEN, 0, -1)
            steps.append((_K_JUMP, insn.imm, row))
        elif spec.op_class is OpClass.CALL:
            row = (pc, index, 1, insn.imm, _ROW_TAKEN, 0, -1)
            steps.append((_K_CALL, rd, insn.imm, row))
        elif spec.op_class is OpClass.INDIRECT:
            steps.append((_K_INDIRECT, rs1, pc, index))
        elif spec.op_class is OpClass.HALT:
            # halt is classified as a control transfer (CONTROL_CLASSES) but
            # has no outcome: is_control=True, taken=None.
            row = (pc, index, 1, next_pc, _ROW_HALT, 0, -1)
            steps.append((_K_HALT, row))
        else:  # pragma: no cover - the opcode table has no other classes
            raise SimulationError(f"cannot compile opcode {insn.op}")
    return _Plan(steps=steps, bids=bids, incs=incs)


#: Only the plan is cached — a BlockIndex holds a strong reference to its
#: program, which would pin every program in the cache forever.
_PLANS: PerProgramCache[_Plan] = PerProgramCache(_build_plan)


class FunctionalSimulator:
    """Architectural simulator for one program (optionally with an MGT)."""

    def __init__(self, program: Program, *, mgt: Optional[MiniGraphTable] = None) -> None:
        self._program = program
        self._mgt = mgt
        self._plan = _PLANS.get(program)

    @property
    def program(self) -> Program:
        return self._program

    # -- execution -------------------------------------------------------------

    def run(self, *, max_instructions: int = 200_000,
            collect_trace: bool = True,
            input_name: str = "reference") -> FunctionalResult:
        """Execute the program until ``halt`` or the instruction budget expires.

        ``max_instructions`` counts *original* instructions, so a run of a
        rewritten program covers exactly the same work as a run of the
        original with the same budget.
        """
        program = self._program
        registers = [0] * NUM_ARCH_REGS
        memory = Memory.from_image(program.data)
        # Committed rows: column value tuples.  Fully static rows (ALU, both
        # branch outcomes, jumps, calls, halt) are interned in the plan, so
        # committing one is a single list append of a shared tuple; dynamic
        # rows (loads, stores, indirect jumps, handles) are plain tuples.
        # Trace-free runs keep only the index column (the profile input), not
        # the rows themselves.
        rows: List[Tuple[int, int, int, int, int, int, int]] = []
        if collect_trace:
            rows_append = rows.append
        else:
            indices: List[int] = []
            indices_append = indices.append
            rows_append = lambda row: indices_append(row[1])  # noqa: E731

        plan = self._plan
        steps = plan.steps
        plan_size = len(steps)
        text_base = program.text_base
        mem_load = memory.load
        mem_store = memory.store
        mask = _WORD_MASK

        pc = program.entry_pc
        executed = 0
        halted = False

        # One dispatch tuple per static instruction; every committed entry is
        # a table dispatch plus raw list work — no per-instance decoding, no
        # per-instruction profile bookkeeping (derived from the index column
        # below), no trace-record allocation on the static paths.
        while executed < max_instructions:
            offset = pc - text_base
            index = offset >> 2
            if offset < 0 or index >= plan_size or offset & 3:
                raise SimulationError(
                    f"{program.name}: execution left the text segment at {pc:#x}")
            step = steps[index]
            kind = step[0]

            if kind == _K_NOP:
                pc += INSTRUCTION_BYTES
                continue

            if kind == _K_ALU:
                _, fn, rd, rs1, rs2, imm, row = step
                result = fn(registers[rs1] if rs1 is not None else 0,
                            registers[rs2] if rs2 is not None else 0, imm)
                if rd is not None:
                    registers[rd] = result & mask
                next_pc = pc + INSTRUCTION_BYTES
            elif kind == _K_LOAD:
                _, size, signed, rd, rs1, imm, entry_pc, next_pc, index = step
                address = ((registers[rs1] if rs1 is not None else 0) + imm) & mask
                value = mem_load(address, size, signed=signed)
                if rd is not None:
                    registers[rd] = value & mask
                row = (entry_pc, index, 1, next_pc, _ROW_LOAD, address, -1)
            elif kind == _K_BRANCH:
                _, fn, rs1, target, taken_row, fall_row = step
                if fn(registers[rs1] if rs1 is not None else 0):
                    row = taken_row
                    next_pc = target
                else:
                    row = fall_row
                    next_pc = pc + INSTRUCTION_BYTES
            elif kind == _K_STORE:
                _, size, rs1, rs2, imm, entry_pc, next_pc, index = step
                address = ((registers[rs1] if rs1 is not None else 0) + imm) & mask
                mem_store(address, registers[rs2] if rs2 is not None else 0, size)
                row = (entry_pc, index, 1, next_pc, _ROW_STORE, address, -1)
            elif kind == _K_HANDLE:
                _, insn = step
                row, next_pc, count = self._execute_handle(
                    insn, pc, index, registers, memory)
                executed += count
                rows_append(row)
                pc = next_pc
                continue
            elif kind == _K_CMOVNE or kind == _K_CMOVEQ:
                _, rd, rs1, rs2, row = step
                a = registers[rs1] if rs1 is not None else 0
                moved = (a != 0) if kind == _K_CMOVNE else (a == 0)
                if moved:
                    result = registers[rs2] if rs2 is not None else 0
                else:
                    result = registers[rd] if rd is not None else 0
                if rd is not None:
                    registers[rd] = result & mask
                next_pc = pc + INSTRUCTION_BYTES
            elif kind == _K_FP:
                _, fn, rd, rs1, rs2, row = step
                result = fn(registers[rs1] if rs1 is not None else 0,
                            registers[rs2] if rs2 is not None else 0)
                if rd is not None:
                    registers[rd] = result & mask
                next_pc = pc + INSTRUCTION_BYTES
            elif kind == _K_JUMP:
                _, next_pc, row = step
            elif kind == _K_CALL:
                _, rd, next_pc, row = step
                if rd is not None:
                    registers[rd] = (pc + INSTRUCTION_BYTES) & mask
            elif kind == _K_INDIRECT:
                _, rs1, entry_pc, index = step
                next_pc = registers[rs1] if rs1 is not None else 0
                row = (entry_pc, index, 1, next_pc, _ROW_TAKEN, 0, -1)
            elif kind == _K_HALT:
                _, row = step
                executed += 1
                rows_append(row)
                halted = True
                break
            else:  # pragma: no cover - plans contain no other kinds
                raise SimulationError(f"corrupt execution plan at {pc:#x}")

            executed += 1
            rows_append(row)
            pc = next_pc

        # One C-level transpose turns the committed rows into the packed
        # columns; the block profile falls out of the index column.
        trace: Optional[Trace] = None
        if collect_trace:
            columns = tuple(zip(*rows)) if rows else ((),) * 7
            index_column: Sequence[int] = columns[1]
            trace = Trace.from_columns(*columns)
            committed = len(rows)
        else:
            index_column = indices
            committed = len(indices)
        profile = self._profile_from_index_column(index_column, executed,
                                                  input_name)
        return FunctionalResult(
            program_name=program.name,
            instructions_executed=executed,
            entries_committed=committed,
            halted=halted,
            registers=registers,
            memory=memory,
            profile=profile,
            trace=trace,
        )

    def _profile_from_index_column(self, index_column: Sequence[int],
                                   executed: int,
                                   input_name: str) -> BlockProfile:
        """Build the block profile from the committed index column.

        One Counter pass over the indices (C speed) replaces the two dict
        operations the interpreter loop used to perform per committed
        instruction; the per-unique-index accumulation below reproduces the
        old first-touch insertion order and counts exactly.
        """
        profile = BlockProfile(program_name=self._program.name,
                               input_name=input_name)
        counts = profile.counts
        counts_get = counts.get
        bids = self._plan.bids
        incs = self._plan.incs
        for index, times in Counter(index_column).items():
            bid = bids[index]
            counts[bid] = counts_get(bid, 0) + incs[index] * times
        # Every committed entry contributes its original-instruction count to
        # both tallies, so the profile total is exactly `executed`.
        profile.dynamic_instructions = executed
        return profile

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _first_useful_index(block) -> int:
        for offset, insn in enumerate(block.instructions):
            if not insn.is_nop:
                return block.start_index + offset
        return block.start_index

    def _read(self, registers: List[int], reg: Optional[int]) -> int:
        if reg is None or is_zero_reg(reg):
            return 0
        return registers[reg]

    def _write(self, registers: List[int], reg: Optional[int], value: int) -> None:
        if reg is None or is_zero_reg(reg):
            return
        registers[reg] = _wrap(value)

    def _execute_handle(self, handle: Instruction, pc: int, index: int,
                        registers: List[int], memory: Memory
                        ) -> Tuple[Tuple[int, int, int, int, int, int, int],
                                   int, int]:
        if self._mgt is None:
            raise SimulationError(
                f"{self._program.name}: handle at {pc:#x} but no MGT was supplied")
        entry = self._mgt.lookup(handle.mgid)
        template = entry.template
        external_values = (self._read(registers, handle.rs1),
                           self._read(registers, handle.rs2))
        interior: Dict[int, int] = {}
        next_pc = pc + INSTRUCTION_BYTES
        taken: Optional[bool] = None
        effective_address: Optional[int] = None
        is_load = is_store = False
        output_value: Optional[int] = None

        def resolve(ref: Optional[OperandRef]) -> int:
            if ref is None:
                return 0
            if ref.kind is OperandKind.EXTERNAL:
                return external_values[ref.index]
            if ref.kind is OperandKind.INTERNAL:
                return interior[ref.index]
            return 0

        for position, template_insn in enumerate(template.instructions):
            op = template_insn.op
            spec = template_insn.spec
            a = resolve(template_insn.src0)
            b = resolve(template_insn.src1)
            result = 0
            if spec.op_class in (OpClass.ALU, OpClass.MUL):
                result = _ALU[op](a, b, template_insn.imm)
            elif spec.is_load:
                is_load = True
                effective_address = _wrap(a + (template_insn.imm or 0))
                size = _ACCESS_SIZE[op]
                result = _wrap(memory.load(effective_address, size,
                                           signed=op not in _UNSIGNED_LOADS))
            elif spec.is_store:
                is_store = True
                effective_address = _wrap(a + (template_insn.imm or 0))
                memory.store(effective_address, b, _ACCESS_SIZE[op])
            elif spec.op_class is OpClass.BRANCH:
                taken = _branch_taken(op, a)
                if taken:
                    next_pc = template_insn.imm
            elif spec.op_class is OpClass.JUMP:
                taken = True
                next_pc = template_insn.imm
            else:
                raise SimulationError(f"opcode {op} not allowed inside a mini-graph")
            interior[position] = result
            if template.out_index == position:
                output_value = result

        if template.out_index is not None:
            self._write(registers, handle.rd, output_value or 0)

        flags = pack_flags(template.has_branch, taken, is_load, is_store,
                           effective_address is not None, True)
        row = (pc, index, template.size, next_pc, flags,
               effective_address if effective_address is not None else 0,
               handle.mgid)
        return row, next_pc, template.size


def run_program(program: Program, *, mgt: Optional[MiniGraphTable] = None,
                max_instructions: int = 200_000, collect_trace: bool = True,
                input_name: str = "reference") -> FunctionalResult:
    """Convenience wrapper: build a simulator and run it once."""
    simulator = FunctionalSimulator(program, mgt=mgt)
    return simulator.run(max_instructions=max_instructions,
                         collect_trace=collect_trace, input_name=input_name)


def profile_from_trace(program: Program, trace: Trace, *,
                       input_name: str = "reference") -> BlockProfile:
    """Reconstruct the basic-block profile of a run from its stored trace.

    One Counter pass over the trace's packed index column against the
    program's compiled plan tables — the same computation the simulator
    performs at the end of a run, usable on a trace loaded from an artifact
    store without re-executing the program.
    """
    simulator = FunctionalSimulator(program)
    return simulator._profile_from_index_column(
        trace.columns().index, trace.original_instruction_count(), input_name)
