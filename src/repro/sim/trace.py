"""Dynamic trace records produced by the functional simulator.

The timing model (:mod:`repro.uarch`) is *functional-first*: the functional
simulator executes the program and emits one :class:`TraceEntry` per
committed instruction (or handle), carrying everything the timing model
needs that is data dependent — control outcome, next PC and effective
address.  The timing model re-derives everything else (operands, opcode
class, latency) from the static program and the MGT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One committed instruction (or mini-graph handle) in dynamic order.

    Attributes:
        pc: program counter of the instruction / handle.
        index: layout index within the program.
        size: number of original program instructions this entry represents
            (1 for singletons, the mini-graph size for handles).
        next_pc: PC of the next committed entry (follow-through or target).
        is_control: whether the entry ends with a control transfer.
        taken: branch outcome (None for non-control entries).
        is_load / is_store: whether the entry contains a memory operation.
        effective_address: address of the memory operation, if any.
        mgid: MGID for handles, None for singletons.
    """

    pc: int
    index: int
    size: int
    next_pc: int
    is_control: bool = False
    taken: Optional[bool] = None
    is_load: bool = False
    is_store: bool = False
    effective_address: Optional[int] = None
    mgid: Optional[int] = None

    @property
    def is_handle(self) -> bool:
        return self.mgid is not None


class Trace:
    """A committed-order dynamic trace with summary statistics."""

    def __init__(self, entries: Optional[List[TraceEntry]] = None) -> None:
        self._entries: List[TraceEntry] = entries if entries is not None else []

    def append(self, entry: TraceEntry) -> None:
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self._entries[index]

    @property
    def entries(self) -> Sequence[TraceEntry]:
        return self._entries

    # -- statistics ------------------------------------------------------------

    def original_instruction_count(self) -> int:
        """Number of original program instructions represented by the trace."""
        return sum(entry.size for entry in self._entries)

    def pipeline_slot_count(self) -> int:
        """Number of pipeline slots consumed (handles count once)."""
        return len(self._entries)

    def handle_count(self) -> int:
        """Number of dynamic handle executions."""
        return sum(1 for entry in self._entries if entry.is_handle)

    def dynamic_coverage(self) -> float:
        """Fraction of original instructions absorbed into handles."""
        original = self.original_instruction_count()
        if original == 0:
            return 0.0
        absorbed = sum(entry.size - 1 for entry in self._entries if entry.is_handle)
        return absorbed / original

    def load_count(self) -> int:
        return sum(1 for entry in self._entries if entry.is_load)

    def store_count(self) -> int:
        return sum(1 for entry in self._entries if entry.is_store)

    def control_count(self) -> int:
        return sum(1 for entry in self._entries if entry.is_control)

    def taken_branch_count(self) -> int:
        return sum(1 for entry in self._entries if entry.taken)
