"""Dynamic trace records produced by the functional simulator.

The timing model (:mod:`repro.uarch`) is *functional-first*: the functional
simulator executes the program and emits one committed-order record per
instruction (or handle), carrying everything the timing model needs that is
data dependent — control outcome, next PC and effective address.  The timing
model re-derives everything else (operands, opcode class, latency) from the
static program and the MGT.

Storage is *columnar*: a :class:`Trace` holds seven fixed-width stdlib
:class:`array.array` columns (pc, index, size, next_pc, flags bitfield,
effective_address, mgid) instead of one object per committed instruction.  A
200k-instruction run therefore allocates a handful of buffers rather than
200k records, batch consumers (the timing pipeline's fetch stage, the decode
trace feed, profile construction) read the columns directly at C speed, and
the whole trace serializes as raw column bytes (:func:`encode_trace`) without
pickling an object graph.  :class:`TraceEntry` remains the one-record view:
``trace[i]`` / ``iter(trace)`` materialize entries on demand, so existing
object-at-a-time callers keep working unchanged.

Optional fields are packed with explicit presence bits in the flags column
(:data:`TF_TAKEN_KNOWN`, :data:`TF_HAS_EA`, :data:`TF_HAS_MGID`), so ``taken
= None`` / ``effective_address = None`` / ``mgid = None`` survive the packed
representation exactly.
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from collections import Counter
from dataclasses import dataclass
from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple, Union

# ---------------------------------------------------------------------------
# Flags bitfield (one byte per entry in the flags column).
# ---------------------------------------------------------------------------

TF_CONTROL = 0x01      #: entry ends with a control transfer
TF_TAKEN_KNOWN = 0x02  #: ``taken`` is a real outcome (False for halt: None)
TF_TAKEN = 0x04        #: control outcome was taken (only with TF_TAKEN_KNOWN)
TF_LOAD = 0x08         #: entry contains a load
TF_STORE = 0x10        #: entry contains a store
TF_HAS_EA = 0x20       #: effective_address column holds a real address
TF_HAS_MGID = 0x40     #: mgid column holds a real MGID (entry is a handle)

TF_MEMORY = TF_LOAD | TF_STORE
_TF_TAKEN_BOTH = TF_TAKEN_KNOWN | TF_TAKEN


def pack_flags(is_control: bool, taken: Optional[bool], is_load: bool,
               is_store: bool, has_ea: bool, has_mgid: bool) -> int:
    """Fold the per-entry booleans/presence bits into one flags byte."""
    flags = 0
    if is_control:
        flags |= TF_CONTROL
    if taken is not None:
        flags |= (_TF_TAKEN_BOTH if taken else TF_TAKEN_KNOWN)
    if is_load:
        flags |= TF_LOAD
    if is_store:
        flags |= TF_STORE
    if has_ea:
        flags |= TF_HAS_EA
    if has_mgid:
        flags |= TF_HAS_MGID
    return flags


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One committed instruction (or mini-graph handle) in dynamic order.

    Attributes:
        pc: program counter of the instruction / handle.
        index: layout index within the program.
        size: number of original program instructions this entry represents
            (1 for singletons, the mini-graph size for handles).
        next_pc: PC of the next committed entry (follow-through or target).
        is_control: whether the entry ends with a control transfer.
        taken: branch outcome (None for non-control entries).
        is_load / is_store: whether the entry contains a memory operation.
        effective_address: address of the memory operation, if any.
        mgid: MGID for handles, None for singletons.
    """

    pc: int
    index: int
    size: int
    next_pc: int
    is_control: bool = False
    taken: Optional[bool] = None
    is_load: bool = False
    is_store: bool = False
    effective_address: Optional[int] = None
    mgid: Optional[int] = None

    @property
    def is_handle(self) -> bool:
        return self.mgid is not None

    def packed_row(self) -> Tuple[int, int, int, int, int, int, int]:
        """This entry as one row of column values (see :meth:`Trace.append`)."""
        return (
            self.pc, self.index, self.size, self.next_pc,
            pack_flags(self.is_control, self.taken, self.is_load,
                       self.is_store, self.effective_address is not None,
                       self.mgid is not None),
            self.effective_address if self.effective_address is not None else 0,
            self.mgid if self.mgid is not None else -1,
        )


def entry_from_row(pc: int, index: int, size: int, next_pc: int, flags: int,
                   effective_address: int, mgid: int) -> TraceEntry:
    """Materialize a :class:`TraceEntry` from one row of column values."""
    return TraceEntry(
        pc=pc, index=index, size=size, next_pc=next_pc,
        is_control=bool(flags & TF_CONTROL),
        taken=bool(flags & TF_TAKEN) if flags & TF_TAKEN_KNOWN else None,
        is_load=bool(flags & TF_LOAD),
        is_store=bool(flags & TF_STORE),
        effective_address=effective_address if flags & TF_HAS_EA else None,
        mgid=mgid if flags & TF_HAS_MGID else None,
    )


class TraceColumns(NamedTuple):
    """Zero-copy view of a trace's seven columns (batch consumers)."""

    pc: array               # 'Q' — program counters
    index: array            # 'I' — static layout indices
    size: array             # 'H' — original instructions per entry
    next_pc: array          # 'Q' — committed successor PCs
    flags: array            # 'B' — TF_* bitfield
    effective_address: array  # 'Q' — 0 unless TF_HAS_EA
    mgid: array             # 'i' — -1 unless TF_HAS_MGID


#: (column name, array typecode, item size) in codec payload order — the
#: single source of truth for the storage layout: encode/decode, the slot
#: attributes and :class:`TraceColumns` all follow this tuple.  It must match
#: the :class:`TraceColumns` field order.
_COLUMN_LAYOUT: Tuple[Tuple[str, str, int], ...] = (
    ("pc", "Q", 8), ("index", "I", 4), ("size", "H", 2), ("next_pc", "Q", 8),
    ("flags", "B", 1), ("effective_address", "Q", 8), ("mgid", "i", 4),
)

assert tuple(name for name, _, _ in _COLUMN_LAYOUT) == TraceColumns._fields

#: Raw column bytes per entry (the uncompressed codec payload width).
TRACE_ROW_BYTES = sum(item_size for _, _, item_size in _COLUMN_LAYOUT)


class _Summary(NamedTuple):
    """One-pass aggregate statistics over the columns (cached per trace)."""

    original_instructions: int
    handles: int
    absorbed: int
    loads: int
    stores: int
    controls: int
    taken: int


class Trace:
    """A committed-order dynamic trace with summary statistics.

    The packed columns are the storage; entries are materialized lazily by
    ``__getitem__`` / ``__iter__``.  Summary statistics are computed once
    from the columns and cached; :meth:`append` invalidates the cache.
    """

    __slots__ = ("_pc", "_index", "_size", "_next_pc", "_flags",
                 "_effective_address", "_mgid", "_summary", "__weakref__")

    def __init__(self, entries: Optional[List[TraceEntry]] = None) -> None:
        self._pc = array("Q")
        self._index = array("I")
        self._size = array("H")
        self._next_pc = array("Q")
        self._flags = array("B")
        self._effective_address = array("Q")
        self._mgid = array("i")
        self._summary: Optional[_Summary] = None
        if entries:
            for entry in entries:
                self.append(entry)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_columns(cls, pc, index, size, next_pc, flags, effective_address,
                     mgid) -> "Trace":
        """Build a trace directly from column value sequences (one pass).

        This is the functional simulator's bulk path: each argument is any
        iterable of ints (the ``array`` constructor consumes it at C speed).
        """
        trace = cls.__new__(cls)
        trace._pc = array("Q", pc)
        trace._index = array("I", index)
        trace._size = array("H", size)
        trace._next_pc = array("Q", next_pc)
        trace._flags = array("B", flags)
        trace._effective_address = array("Q", effective_address)
        trace._mgid = array("i", mgid)
        trace._summary = None
        lengths = {len(column) for column in trace.columns()}
        if len(lengths) > 1:
            raise ValueError(f"ragged trace columns: lengths {sorted(lengths)}")
        return trace

    @classmethod
    def from_packed_rows(cls, rows: Sequence[Tuple[int, ...]]) -> "Trace":
        """Build a trace from packed ``(pc, index, size, next_pc, flags, ea,
        mgid)`` row tuples (see :meth:`TraceEntry.packed_row`)."""
        if not rows:
            return cls()
        return cls.from_columns(*zip(*rows))

    def append(self, entry: TraceEntry) -> None:
        """Append one entry (packs it into the columns; invalidates stats)."""
        (pc, index, size, next_pc, flags, effective_address,
         mgid) = entry.packed_row()
        self._pc.append(pc)
        self._index.append(index)
        self._size.append(size)
        self._next_pc.append(next_pc)
        self._flags.append(flags)
        self._effective_address.append(effective_address)
        self._mgid.append(mgid)
        self._summary = None

    # -- sequence protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[TraceEntry]:
        return map(entry_from_row, self._pc, self._index, self._size,
                   self._next_pc, self._flags, self._effective_address,
                   self._mgid)

    def __getitem__(self, position: Union[int, slice]
                    ) -> Union[TraceEntry, List[TraceEntry]]:
        if isinstance(position, slice):
            return [entry_from_row(*row) for row in
                    zip(self._pc[position], self._index[position],
                        self._size[position], self._next_pc[position],
                        self._flags[position],
                        self._effective_address[position],
                        self._mgid[position])]
        return entry_from_row(
            self._pc[position], self._index[position], self._size[position],
            self._next_pc[position], self._flags[position],
            self._effective_address[position], self._mgid[position])

    @property
    def entries(self) -> "Trace":
        """Lazy entry view (the trace itself is the sequence of entries)."""
        return self

    def columns(self) -> TraceColumns:
        """The seven packed columns (zero-copy; do not mutate)."""
        return TraceColumns(self._pc, self._index, self._size, self._next_pc,
                            self._flags, self._effective_address, self._mgid)

    # -- statistics ------------------------------------------------------------

    def _summarize(self) -> _Summary:
        summary = self._summary
        if summary is None:
            # One Counter pass over the one-byte flags column (C speed) plus
            # a C-level sum of the size column covers every statistic; the
            # per-entry Python loop for absorbed instructions only runs when
            # the trace actually contains handles.
            flag_counts = Counter(self._flags)
            handles = loads = stores = controls = taken = 0
            for flags, times in flag_counts.items():
                if flags & TF_HAS_MGID:
                    handles += times
                if flags & TF_LOAD:
                    loads += times
                if flags & TF_STORE:
                    stores += times
                if flags & TF_CONTROL:
                    controls += times
                if flags & TF_TAKEN:
                    taken += times
            original = sum(self._size)
            if handles:
                absorbed = sum(size - 1 for size, flags
                               in zip(self._size, self._flags)
                               if flags & TF_HAS_MGID)
            else:
                absorbed = 0
            summary = _Summary(original, handles, absorbed, loads, stores,
                               controls, taken)
            self._summary = summary
        return summary

    def original_instruction_count(self) -> int:
        """Number of original program instructions represented by the trace."""
        return self._summarize().original_instructions

    def pipeline_slot_count(self) -> int:
        """Number of pipeline slots consumed (handles count once)."""
        return len(self._index)

    def handle_count(self) -> int:
        """Number of dynamic handle executions."""
        return self._summarize().handles

    def dynamic_coverage(self) -> float:
        """Fraction of original instructions absorbed into handles."""
        summary = self._summarize()
        if summary.original_instructions == 0:
            return 0.0
        return summary.absorbed / summary.original_instructions

    def load_count(self) -> int:
        return self._summarize().loads

    def store_count(self) -> int:
        return self._summarize().stores

    def control_count(self) -> int:
        return self._summarize().controls

    def taken_branch_count(self) -> int:
        return self._summarize().taken

    # -- serialization ---------------------------------------------------------

    def __reduce__(self):
        # Pickling (the artifact store's object-graph path, and every
        # Session.map/sweep pool transfer) ships the packed columns as one
        # flat binary blob instead of an object per entry.
        return (decode_trace, (encode_trace(self),))


# ---------------------------------------------------------------------------
# Binary codec: header + raw column bytes.
#
# Layout (all header integers little-endian):
#
#   offset  size  field
#   0       4     magic b"RTRC"
#   4       2     codec version (TRACE_CODEC_VERSION)
#   6       1     compression (0 = raw, 1 = zlib)
#   7       1     reserved (0)
#   8       8     entry count
#   16      8     payload byte length (as stored, i.e. after compression)
#   24      ...   payload: the seven columns' little-endian bytes,
#                 concatenated in _COLUMN_LAYOUT order
# ---------------------------------------------------------------------------

TRACE_MAGIC = b"RTRC"
TRACE_CODEC_VERSION = 1
_HEADER = struct.Struct("<4sHBBQQ")

_COMPRESS_NONE = 0
_COMPRESS_ZLIB = 1

#: zlib level 1: traces are dominated by loop repetition, so even the fastest
#: level shrinks them far below one row per entry while staying IO-bound.
_ZLIB_LEVEL = 1

_NATIVE_IS_LITTLE = sys.byteorder == "little"


class TraceCodecError(ValueError):
    """Raised when a binary trace blob cannot be decoded."""


class UnknownTraceCodecVersion(TraceCodecError):
    """The blob is a trace artifact, but from an unknown codec version."""

    def __init__(self, version: int) -> None:
        super().__init__(f"unknown trace codec version {version} "
                         f"(this build reads version {TRACE_CODEC_VERSION})")
        self.version = version


def _column_bytes(column: array) -> bytes:
    if _NATIVE_IS_LITTLE:
        return column.tobytes()
    swapped = array(column.typecode, column)
    swapped.byteswap()
    return swapped.tobytes()


def encode_trace(trace: Trace, *, compress: bool = True) -> bytes:
    """Serialize ``trace`` as header + packed column bytes."""
    payload = b"".join(_column_bytes(getattr(trace, "_" + name))
                       for name, _, _ in _COLUMN_LAYOUT)
    compression = _COMPRESS_NONE
    if compress:
        packed = zlib.compress(payload, _ZLIB_LEVEL)
        if len(packed) < len(payload):
            payload = packed
            compression = _COMPRESS_ZLIB
    header = _HEADER.pack(TRACE_MAGIC, TRACE_CODEC_VERSION, compression, 0,
                          len(trace), len(payload))
    return header + payload


def is_trace_blob(data: bytes) -> bool:
    """Does ``data`` start with the binary trace magic?"""
    return data[:len(TRACE_MAGIC)] == TRACE_MAGIC


def decode_trace(data: bytes) -> Trace:
    """Deserialize a blob produced by :func:`encode_trace`.

    Raises :class:`UnknownTraceCodecVersion` for artifacts written by a
    different codec version and :class:`TraceCodecError` for anything
    structurally invalid (callers treat both as cache misses).
    """
    if len(data) < _HEADER.size:
        raise TraceCodecError(f"trace blob truncated: {len(data)} bytes")
    magic, version, compression, _, count, payload_length = \
        _HEADER.unpack_from(data)
    if magic != TRACE_MAGIC:
        raise TraceCodecError(f"bad trace magic {magic!r}")
    if version != TRACE_CODEC_VERSION:
        raise UnknownTraceCodecVersion(version)
    payload = data[_HEADER.size:]
    if len(payload) != payload_length:
        raise TraceCodecError(
            f"trace payload length mismatch: header says {payload_length}, "
            f"got {len(payload)}")
    if compression == _COMPRESS_ZLIB:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as error:
            raise TraceCodecError(f"corrupt trace payload: {error}") from None
    elif compression != _COMPRESS_NONE:
        raise TraceCodecError(f"unknown trace compression {compression}")
    if len(payload) != count * TRACE_ROW_BYTES:
        raise TraceCodecError(
            f"trace payload holds {len(payload)} bytes, expected "
            f"{count * TRACE_ROW_BYTES} for {count} entries")

    trace = Trace.__new__(Trace)
    offset = 0
    for name, typecode, item_size in _COLUMN_LAYOUT:
        column = array(typecode)
        end = offset + count * item_size
        column.frombytes(payload[offset:end])
        if not _NATIVE_IS_LITTLE:
            column.byteswap()
        setattr(trace, "_" + name, column)
        offset = end
    trace._summary = None
    return trace
