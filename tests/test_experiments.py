"""Tests for the experiment harnesses (small budgets, small benchmark subsets)."""

import pytest

from repro.experiments import (
    ExperimentRunner,
    ResultTable,
    format_percent,
    geometric_mean,
    run_best_policy,
    run_coverage_panel,
    run_domain_panel,
    run_figure6,
    run_figure7,
    run_icache_effect,
    run_register_panel,
    run_bandwidth_panel,
    run_robustness,
)
from repro.minigraph import DEFAULT_POLICY, INTEGER_POLICY
from repro.uarch import baseline_config, integer_memory_minigraph_config

SMALL = ["gsm.toast", "frag", "bitcount", "mcf"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(budget=4000)


class TestReporting:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_format_percent(self):
        assert format_percent(1.1) == "+10.0%"
        assert format_percent(0.95) == "-5.0%"

    def test_result_table_render_and_means(self):
        table = ResultTable(title="demo", columns=["a"])
        table.add("gsm.toast", "a", 1.2, suite="media")
        table.add("mcf", "a", 0.9, suite="spec")
        text = table.render()
        assert "demo" in text and "gsm.toast" in text
        assert table.suite_means("a")["media"] == pytest.approx(1.2)
        assert table.overall_mean("a") == pytest.approx(geometric_mean([1.2, 0.9]))


class TestRunner:
    def test_artifacts_are_cached(self, runner):
        first = runner.baseline("gsm.toast")
        second = runner.baseline("gsm.toast")
        assert first is second

    def test_minigraph_artifacts(self, runner):
        artifacts = runner.minigraph("gsm.toast", DEFAULT_POLICY)
        assert artifacts.selection.template_count > 0
        assert len(artifacts.mgt) == artifacts.selection.template_count

    def test_speedup_computation(self, runner):
        speedup = runner.speedup("gsm.toast", DEFAULT_POLICY,
                                 integer_memory_minigraph_config(),
                                 baseline_config=baseline_config())
        assert 0.5 < speedup < 2.0

    def test_benchmark_listing(self):
        assert "mcf" in ExperimentRunner.benchmarks("spec")
        assert len(ExperimentRunner.benchmarks(limit=3)) == 3


class TestFigureHarnesses:
    def test_figure5_panels(self, runner):
        integer = run_coverage_panel(runner, integer_only=True, benchmarks=SMALL[:2],
                                     mgt_sizes=(32, 512), graph_sizes=(2, 4))
        memory = run_coverage_panel(runner, integer_only=False, benchmarks=SMALL[:2],
                                    mgt_sizes=(32, 512), graph_sizes=(2, 4))
        for name in SMALL[:2]:
            assert 0.0 <= integer.table.value(name, "512e/4i") <= 1.0
            assert memory.table.value(name, "512e/4i") >= integer.table.value(name, "512e/4i")

    def test_figure5_domain_panel(self, runner):
        result = run_domain_panel(runner, benchmarks=["frag", "rtr"], mgt_sizes=(64,))
        assert result.table.column_values("domain-64e")

    def test_figure6(self, runner):
        result = run_figure6(runner, benchmarks=SMALL[:2], configs=("int", "int-mem"))
        assert set(result.baseline_ipc) == set(SMALL[:2])
        for name in SMALL[:2]:
            assert result.table.value(name, "int") > 0.0
        assert "Figure 6" in result.render()

    def test_figure7(self, runner):
        result = run_figure7(runner, benchmarks=["gsm.toast"])
        row = result.table.rows["gsm.toast"]
        assert "int" in row and "int-mem-noserial-noreplay" in row

    def test_best_policy(self, runner):
        result = run_best_policy(runner, benchmarks=["gsm.toast", "mcf"])
        assert set(result.best_policy) == {"gsm.toast", "mcf"}
        # The best policy can never be worse than the unrestricted default.
        figure7 = run_figure7(runner, benchmarks=["mcf"])
        assert result.best_speedup["mcf"] >= figure7.table.value("mcf", "int-mem") - 1e-9

    def test_figure8_register_panel(self, runner):
        table = run_register_panel(runner, benchmarks=["gsm.toast"],
                                   register_sizes=(164, 104), modes=("baseline", "int-mem"))
        # Shrinking the register file cannot speed the baseline up.
        assert table.value("gsm.toast", "baseline@104") <= \
            table.value("gsm.toast", "baseline@164") + 1e-9

    def test_figure8_bandwidth_panel(self, runner):
        table = run_bandwidth_panel(runner, benchmarks=["bitcount"],
                                    variants=("6-wide", "4-wide"),
                                    modes=("baseline", "int"))
        assert table.value("bitcount", "baseline@4-wide") <= \
            table.value("bitcount", "baseline@6-wide") + 1e-9

    def test_robustness(self, runner):
        result = run_robustness(runner, benchmarks=["gsm.toast"])
        assert "gsm.toast" in result.reports
        assert 0.0 <= result.mean_relative_loss <= 1.0

    def test_icache_effect(self, runner):
        result = run_icache_effect(runner, benchmarks=["gcc"])
        assert result.table.value("gcc", "padded") > 0.0
        assert result.table.value("gcc", "compressed") > 0.0
