"""Tests for candidate enumeration, legality checking and greedy selection."""

import pytest

from repro.minigraph import (
    DEFAULT_POLICY,
    INTEGER_POLICY,
    EnumerationLimits,
    enumerate_minigraphs,
    select_minigraphs,
)
from repro.program import Program
from repro.sim import run_program


def _program(source, name="extract"):
    return Program.from_assembly(name, source)


def _profile(program, budget=5000):
    return run_program(program, max_instructions=budget).profile


class TestEnumeration:
    def test_figure1_left_idiom_is_found(self):
        # addl / cmplt / bne within one block, as in the paper's Figure 1.
        program = _program("""
          ldi r18, 0
          ldi r5, 10
        loop:
          addqi r18,2,r18
          cmplt r18,r5,r7
          bne r7,loop
          halt
        """)
        candidates = enumerate_minigraphs(program)
        sizes = {candidate.template.size for candidate in candidates}
        assert 3 in sizes
        three = [c for c in candidates if c.template.size == 3][0]
        assert three.template.has_branch
        assert three.output_reg == 18  # the counter is live out of the block
        assert three.input_regs == (18, 5)

    def test_figure1_right_idiom_is_found(self):
        program = _program("""
        .data table 7 9
          la r4, table
          ldq r2,0(r4)
          srli r2,1,r17
          andi r17,1,r17
          addq r17,r17,r1
          halt
        """)
        candidates = enumerate_minigraphs(program)
        memory_graphs = [c for c in candidates if c.template.has_load]
        assert memory_graphs
        assert any(c.template.size == 3 for c in memory_graphs)

    def test_two_memory_operations_never_combined(self):
        program = _program("""
        .data buf 1 2
          la r1, buf
          ldq r2,0(r1)
          ldq r3,8(r1)
          addq r2,r3,r4
          halt
        """)
        for candidate in enumerate_minigraphs(program):
            memory_ops = sum(1 for t in candidate.template.instructions if t.is_memory)
            assert memory_ops <= 1

    def test_interface_limit_two_inputs(self):
        for candidate in enumerate_minigraphs(_program("""
          addq r1,r2,r5
          addq r3,r4,r6
          addq r5,r6,r7
          addq r7,r7,r8
          halt
        """)):
            assert len(candidate.input_regs) <= 2

    def test_interface_limit_one_output(self):
        # r5 and r6 are both read later, so the pair (producing two live
        # values) must never be a single mini-graph.
        program = _program("""
          addqi r1,1,r5
          addqi r2,1,r6
          addq r5,r6,r7
          addq r5,r6,r8
          addq r7,r8,r9
          halt
        """)
        for candidate in enumerate_minigraphs(program):
            members = set(candidate.member_indices)
            assert not ({0, 1} <= members and 2 not in members and 3 not in members)

    def test_branch_must_be_terminal(self):
        program = _program("""
          clr r1
        loop:
          addqi r1,1,r1
          cmplti r1,5,r2
          bne r2,loop
          halt
        """)
        for candidate in enumerate_minigraphs(program):
            for position, template_insn in enumerate(candidate.template.instructions):
                if template_insn.is_control:
                    assert position == candidate.template.size - 1

    def test_candidates_respect_max_size(self):
        program = _program("""
          addqi r1,1,r1
          addqi r1,1,r1
          addqi r1,1,r1
          addqi r1,1,r1
          addqi r1,1,r1
          halt
        """)
        limits = EnumerationLimits(max_size=3)
        for candidate in enumerate_minigraphs(program, limits):
            assert candidate.template.size <= 3

    def test_anchor_prefers_memory_operation(self):
        program = _program("""
        .data buf 5
          la r1, buf
          addqi r2,8,r3
          ldq r4,0(r3)
          halt
        """)
        candidates = [c for c in enumerate_minigraphs(program) if c.template.has_load]
        assert candidates
        for candidate in candidates:
            anchor_insn = program.instructions[candidate.anchor_index]
            assert anchor_insn.is_memory

    def test_interference_blocks_illegal_motion(self):
        # The addq (candidate member) cannot move down past the store that
        # reads its output register, nor can the cmplt move up past it: any
        # graph containing both addq and cmplt but not the store is illegal.
        program = _program("""
        .data buf 0
          la r1, buf
          addqi r2,1,r3
          stq r3,0(r1)
          cmplti r3,10,r4
          bne r4,out
          clr r5
        out:
          halt
        """)
        for candidate in enumerate_minigraphs(program):
            members = set(candidate.member_indices)
            assert not ({1, 3} <= members and 2 not in members)


class TestSelection:
    def _loop_program(self):
        return _program("""
        .data data 3 1 4 1 5 9 2 6
        .data out 0 0 0 0 0 0 0 0
          la r16, data
          la r17, out
          ldi r18, 8
          clr r10
        loop:
          s8addl r10,r16,r8
          ldq r2,0(r8)
          srli r2,2,r3
          andi r3,7,r3
          s8addl r10,r17,r9
          stq r3,0(r9)
          addqi r10,1,r10
          cmplt r10,r18,r9
          bne r9,loop
          halt
        """)

    def test_selection_produces_positive_coverage(self):
        program = self._loop_program()
        profile = _profile(program)
        selection = select_minigraphs(program, profile, policy=DEFAULT_POLICY)
        assert selection.template_count > 0
        assert 0.0 < selection.coverage < 1.0

    def test_each_static_instruction_in_at_most_one_graph(self):
        program = self._loop_program()
        selection = select_minigraphs(program, _profile(program), policy=DEFAULT_POLICY)
        used = []
        for selected in selection.selected:
            for instance in selected.instances:
                used.extend(instance.member_indices)
        assert len(used) == len(set(used))

    def test_mgt_capacity_limits_templates(self):
        program = self._loop_program()
        profile = _profile(program)
        small = select_minigraphs(program, profile, policy=DEFAULT_POLICY.with_mgt_entries(1))
        large = select_minigraphs(program, profile, policy=DEFAULT_POLICY)
        assert small.template_count <= 1
        assert small.coverage <= large.coverage

    def test_integer_policy_excludes_memory(self):
        program = self._loop_program()
        selection = select_minigraphs(program, _profile(program), policy=INTEGER_POLICY)
        for selected in selection.selected:
            assert selected.template.is_integer_only

    def test_coverage_monotonic_in_graph_size(self):
        program = self._loop_program()
        profile = _profile(program)
        cov2 = select_minigraphs(program, profile,
                                 policy=DEFAULT_POLICY.with_max_size(2)).coverage
        cov4 = select_minigraphs(program, profile,
                                 policy=DEFAULT_POLICY.with_max_size(4)).coverage
        assert cov4 >= cov2

    def test_benefit_formula_matches_coverage(self):
        program = self._loop_program()
        profile = _profile(program)
        selection = select_minigraphs(program, profile, policy=DEFAULT_POLICY)
        recomputed = sum(
            instance.instructions_removed * profile.frequency(instance.block_id)
            for selected in selection.selected for instance in selected.instances)
        assert recomputed == selection.covered_dynamic_instructions

    def test_policy_filters_serial_graphs(self):
        program = self._loop_program()
        profile = _profile(program)
        policy = DEFAULT_POLICY.without_external_serialization()
        selection = select_minigraphs(program, profile, policy=policy)
        for selected in selection.selected:
            assert not selected.template.is_externally_serial

    def test_policy_filters_interior_loads(self):
        program = self._loop_program()
        profile = _profile(program)
        policy = DEFAULT_POLICY.without_replay_vulnerable()
        selection = select_minigraphs(program, profile, policy=policy)
        for selected in selection.selected:
            assert not selected.template.has_interior_load
