"""Seeded program synthesis + the differential fuzzing stack.

Four families of guarantees:

* **determinism** — a spec's name round-trips through parsing, regeneration
  is bit-identical across generator instantiations, and generation never
  touches Python's global ``random`` state;
* **the corpus stands** — every committed ``tests/corpus/*.json`` entry
  replays clean under all six oracles (starter seeds span the dial space;
  repro entries pin fixed bugs);
* **the oracles have teeth** — a deliberately injected selection-ordering
  bug is caught within the CI smoke budget of 64 seeds, and the failing
  seed shrinks to smaller dials that still fail;
* **quarantined geometries** — machine shapes the geometry oracle found
  crashing (plain ``ValueError`` escaping from predictor/BTB constructors,
  FP programs livelocking on ``fp_units=0``) now raise ``ConfigError``.
"""

import dataclasses
import json
import random
from pathlib import Path

import pytest

from repro.fuzz import (
    SynthSpec,
    SynthSpecError,
    generate_program,
    generate_source,
    run_fuzz,
    run_oracles,
    shrink_failure,
    synth,
)
from repro.fuzz import oracles as oracles_module
from repro.fuzz.corpus import CorpusEntry, load_corpus, replay_entry, write_repro
from repro.fuzz.generator import _DIALS
from repro.sim import run_program
from repro.uarch.config import ConfigError, MachineConfig, baseline_config
from repro.uarch.pipeline import TimingSimulator
from repro.workloads import REGISTRY, WorkloadError, load_benchmark

CORPUS_DIR = Path(__file__).parent / "corpus"


# -- determinism --------------------------------------------------------------------


class TestDeterminism:
    def test_name_round_trips(self):
        for seed in range(50):
            spec = SynthSpec.sample(seed)
            assert SynthSpec.from_name(spec.name) == spec

    def test_regeneration_is_bit_identical(self):
        """Same seed, fresh generator state: byte-for-byte the same program."""
        for seed in (0, 7, 23):
            spec = SynthSpec.sample(seed)
            source_a = generate_source(spec, "reference")
            source_b = generate_source(SynthSpec.from_name(spec.name),
                                       "reference")
            assert source_a == source_b
            program_a = generate_program(spec, "reference")
            program_b = generate_program(spec, "reference")
            assert [str(insn) for insn in program_a.instructions] == \
                   [str(insn) for insn in program_b.instructions]

    def test_inputs_differ_but_structure_is_shared(self):
        spec = SynthSpec.sample(11)
        reference = generate_source(spec, "reference")
        train = generate_source(spec, "train")
        assert reference != train
        # Only the data segment differs: the instruction stream is identical.
        ref_text = [line for line in reference.splitlines()
                    if not line.lstrip().startswith(".data")]
        train_text = [line for line in train.splitlines()
                      if not line.lstrip().startswith(".data")]
        assert ref_text == train_text

    def test_generation_never_touches_global_random(self):
        """Everything is seeded explicitly; ``random`` stays untouched."""
        random.seed(1234)
        before = random.getstate()
        spec = SynthSpec.sample(42)
        generate_program(spec, "reference")
        run_oracles(spec, oracles=("rewrite",))
        assert random.getstate() == before

    def test_generated_programs_terminate(self):
        for seed in range(25):
            spec = SynthSpec.sample(seed)
            result = run_program(generate_program(spec, "reference"),
                                 max_instructions=60_000)
            assert result.halted, spec.name

    def test_bad_names_rejected(self):
        for name in ("synth:", "synth:v1-s1", "synth:v9-s1-b1-l2-d0-t1-c0-"
                     "m0-a1-w8-r2-f0-u0", "synth:v1-s1-b0-l2-d0-t1-c0-m0-"
                     "a1-w8-r2-f0-u0"):
            with pytest.raises(SynthSpecError):
                SynthSpec.from_name(name)

    def test_dial_bounds_enforced(self):
        with pytest.raises(SynthSpecError):
            SynthSpec.sample(0).with_dials(blocks=0)
        with pytest.raises(SynthSpecError):
            SynthSpec.sample(0).with_dials(branch_density=101)


# -- registry / grid integration ----------------------------------------------------


class TestWorkloadFamily:
    def test_registry_resolves_synth_names(self):
        name = synth(seed=5)
        benchmark = REGISTRY.get(name)
        assert benchmark.suite == "synth"
        program = load_benchmark(name)
        assert program.name == name

    def test_registry_rejects_malformed_synth_names(self):
        with pytest.raises(WorkloadError):
            REGISTRY.get("synth:not-a-spec")

    def test_synth_names_work_as_grid_axis(self):
        from repro.api import RunSpec, Session
        from repro.grid import Axis, GridSpec
        from repro.grid.engine import run_grid
        from repro.minigraph.policies import DEFAULT_POLICY

        grid = GridSpec(
            name="synth-axis",
            axes=(Axis("workload", tuple(synth(seed=s) for s in range(2))),
                  Axis("config", ("baseline", "minigraph"))),
            build=lambda point: RunSpec(
                benchmark=point["workload"], budget=2_000,
                policy=None if point["config"] == "baseline"
                else DEFAULT_POLICY),
        )
        rows = list(run_grid(Session(), grid))
        assert len(rows) == 4
        assert all(row.benchmark.startswith("synth:") for row in rows)


# -- corpus replay ------------------------------------------------------------------


class TestCorpus:
    def test_corpus_is_committed_and_spans_dials(self):
        entries = load_corpus(CORPUS_DIR)
        assert len(entries) >= 20
        # The starter corpus must not collapse to one corner of dial space.
        loop_depths = {SynthSpec.from_name(e.spec).loop_depth for e in entries}
        fp = {SynthSpec.from_name(e.spec).fp_density > 0 for e in entries}
        mem = {SynthSpec.from_name(e.spec).mem_density > 0 for e in entries}
        assert loop_depths == {0, 1, 2}
        assert fp == {True, False}
        assert mem == {True, False}

    def test_corpus_replays_clean_under_all_oracles(self):
        """Every committed entry passes every oracle it names (tier-1)."""
        for entry in load_corpus(CORPUS_DIR):
            results = replay_entry(entry)
            bad = [(r.oracle, r.detail) for r in results if not r.ok]
            assert not bad, f"{entry.name}: {bad}"

    def test_write_and_load_round_trip(self, tmp_path):
        entry = CorpusEntry(name="rt", spec=synth(seed=77),
                            oracles=("rewrite", "codec"), budget=5_000,
                            note="round-trip")
        path = write_repro(tmp_path, entry)
        assert json.loads(path.read_text())["spec"] == entry.spec
        assert load_corpus(tmp_path) == [entry]

    def test_malformed_entries_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(SynthSpecError):
            load_corpus(tmp_path)
        with pytest.raises(SynthSpecError):
            CorpusEntry(name="x", spec=synth(seed=1), oracles=("nope",))


# -- the oracles have teeth ---------------------------------------------------------


def _ordering_bug(program, profile, *, policy=None, candidates=None):
    """The injected defect: selection returns its picks in reversed order."""
    result = _ordering_bug.real(program, profile, policy=policy,
                                candidates=candidates)
    if len(result.selected) > 1:
        return dataclasses.replace(
            result, selected=tuple(reversed(result.selected)))
    return result


_ordering_bug.real = oracles_module.select_minigraphs


class TestOracleSensitivity:
    @pytest.fixture()
    def injected_ordering_bug(self, monkeypatch):
        monkeypatch.setattr(oracles_module, "select_minigraphs",
                            _ordering_bug)

    def test_selection_ordering_bug_caught_within_64_seeds(
            self, injected_ordering_bug):
        for seed in range(64):
            results = run_oracles(SynthSpec.sample(seed),
                                  oracles=("selection",))
            if any(not r.ok for r in results):
                return
        pytest.fail("injected selection-ordering bug survived 64 seeds")

    def test_failing_seed_shrinks_and_still_fails(
            self, injected_ordering_bug):
        spec = SynthSpec.sample(0)
        assert any(not r.ok
                   for r in run_oracles(spec, oracles=("selection",)))
        reduced = shrink_failure(spec, ("selection",))
        for _, fieldname, _, _ in _DIALS:
            assert getattr(reduced, fieldname) <= getattr(spec, fieldname)
        assert reduced != spec
        assert any(not r.ok
                   for r in run_oracles(reduced, oracles=("selection",)))

    def test_campaign_reports_and_persists_repro(
            self, injected_ordering_bug, tmp_path):
        report = run_fuzz(2, oracles=("selection",),
                          corpus_dir=str(tmp_path))
        assert not report.ok
        failure = report.failures[0]
        assert failure.oracle == "selection"
        assert failure.shrunk is not None
        persisted = load_corpus(tmp_path)
        assert persisted and persisted[0].spec == failure.shrunk

    def test_clean_campaign(self):
        from repro.fuzz import ORACLE_NAMES
        report = run_fuzz(4)
        assert report.ok
        assert report.differential_runs == 4 * len(ORACLE_NAMES)


# -- quarantined geometries ---------------------------------------------------------


class TestQuarantinedGeometries:
    """Machine shapes the geometry oracle found escaping validation.

    Before the fix these raised plain ``ValueError`` from deep inside
    ``TimingSimulator`` construction (predictor/BTB constructors) or
    livelocked until the 5M-cycle watchdog (FP work on ``fp_units=0``).
    All must now be ``ConfigError`` at construction/admission time.
    """

    def test_btb_entries_must_divide_into_sets(self):
        # Found by the geometry oracle at campaign seed 0.
        with pytest.raises(ConfigError):
            MachineConfig(name="fuzz", btb_entries=1274, btb_associativity=6)

    def test_predictor_entries_must_be_power_of_two(self):
        # Found by the geometry oracle at campaign seed 3.
        with pytest.raises(ConfigError):
            MachineConfig(name="fuzz", predictor_entries=2988)

    def test_fp_program_on_fp_less_machine_rejected_at_admission(self):
        spec = SynthSpec.sample(1004).with_dials(fp_density=40)
        program = generate_program(spec, "reference")
        trace = run_program(program, max_instructions=10_000).trace
        config = dataclasses.replace(baseline_config(), fp_units=0,
                                     issue_width=4)
        with pytest.raises(ConfigError):
            TimingSimulator(program, trace, config)

    def test_integer_program_on_fp_less_machine_still_admitted(self):
        """The admission check only fires when FP work is actually present."""
        spec = SynthSpec.sample(3).with_dials(fp_density=0)
        program = generate_program(spec, "reference")
        trace = run_program(program, max_instructions=10_000).trace
        config = dataclasses.replace(baseline_config(), fp_units=0,
                                     issue_width=4)
        stats = TimingSimulator(program, trace, config).run()
        assert stats.committed_slots == len(trace)
