"""Tests for the timing-model building blocks: predictor, BTB, caches,
store sets, functional-unit pool and machine configurations."""

import pytest

from repro.minigraph.mgt import FU_ALU, FU_ALU_PIPELINE, FU_LOAD
from repro.uarch import (
    BranchTargetBuffer,
    Cache,
    FrontEndPredictor,
    FunctionalUnitPool,
    HybridBranchPredictor,
    MemoryHierarchy,
    StoreSetPredictor,
    baseline_config,
    integer_memory_minigraph_config,
    integer_minigraph_config,
)
from repro.uarch.config import CacheConfig


class TestBranchPredictor:
    def test_learns_always_taken(self):
        predictor = HybridBranchPredictor(entries=256)
        pc = 0x1000
        for _ in range(8):
            predicted = predictor.predict(pc)
            predictor.update(pc, True, predicted)
        assert predictor.predict(pc) is True

    def test_learns_alternating_pattern_with_history(self):
        predictor = HybridBranchPredictor(entries=256, history_bits=8)
        pc = 0x2000
        outcomes = [True, False] * 64
        mispredictions = 0
        for taken in outcomes:
            predicted = predictor.predict(pc)
            if predicted != taken:
                mispredictions += 1
            predictor.update(pc, taken, predicted)
        # The gshare component should capture the alternation eventually.
        assert mispredictions < len(outcomes) // 2

    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            HybridBranchPredictor(entries=100)

    def test_stats_track_mispredictions(self):
        predictor = HybridBranchPredictor(entries=64)
        predicted = predictor.predict(0x4)
        predictor.update(0x4, not predicted, predicted)
        assert predictor.stats.direction_mispredictions == 1


class TestBtb:
    def test_hit_after_install(self):
        btb = BranchTargetBuffer(entries=64, associativity=4)
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_miss_returns_none(self):
        btb = BranchTargetBuffer(entries=64, associativity=4)
        assert btb.lookup(0x1234) is None

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(entries=8, associativity=2)
        # These PCs map to the same set (4 sets -> stride 16 bytes).
        conflicting = [0x1000, 0x1010, 0x1020]
        for pc in conflicting:
            btb.update(pc, pc + 4)
        assert btb.lookup(0x1000) is None      # evicted
        assert btb.lookup(0x1020) == 0x1024    # most recent survives

    def test_front_end_predictor_requires_btb_target_for_taken(self):
        frontend = FrontEndPredictor(predictor_entries=64, btb_entries=64)
        # Train direction to taken but never install a target.
        for _ in range(4):
            frontend.direction.update(0x100, True, True)
        prediction = frontend.predict(0x100, is_conditional=True)
        assert prediction.taken is False


class TestCaches:
    def test_first_access_misses_then_hits(self):
        cache = Cache(CacheConfig(1024, 2, 32, 1))
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.stats.misses == 1
        assert cache.stats.accesses == 2

    def test_same_line_shares_entry(self):
        cache = Cache(CacheConfig(1024, 2, 32, 1))
        cache.access(0x1000)
        assert cache.access(0x101F) is True   # same 32-byte line
        assert cache.access(0x1020) is False  # next line

    def test_lru_within_set(self):
        # 2 sets, 1-way: addresses 0 and 64 map to set 0 and conflict.
        cache = Cache(CacheConfig(64, 1, 32, 1))
        cache.access(0)
        cache.access(64)
        assert cache.probe(0) is False
        assert cache.probe(64) is True

    def test_hierarchy_latencies(self):
        hierarchy = MemoryHierarchy(baseline_config())
        config = baseline_config()
        cold = hierarchy.data_latency(0x5000)
        warm = hierarchy.data_latency(0x5000)
        assert cold == (config.dcache.hit_latency + config.l2cache.hit_latency
                        + config.memory_latency)
        assert warm == config.dcache.hit_latency

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = MemoryHierarchy(baseline_config())
        config = baseline_config()
        hierarchy.data_latency(0x9000)
        # Evict 0x9000 from the 2-way L1 by touching a few lines that map to
        # the same L1 set (16KB apart); far too few to disturb the 2MB L2.
        l1_conflict_stride = config.dcache.line_bytes * config.dcache.num_sets
        for i in range(1, 9):
            hierarchy.data_latency(0x9000 + i * l1_conflict_stride)
        latency = hierarchy.data_latency(0x9000)
        assert latency == config.dcache.hit_latency + config.l2cache.hit_latency


class TestStoreSets:
    def test_no_prediction_before_training(self):
        predictor = StoreSetPredictor()
        assert predictor.predicted_store_for(0x100) is None

    def test_violation_training_creates_dependence(self):
        predictor = StoreSetPredictor()
        predictor.train_violation(load_pc=0x100, store_pc=0x200)
        predictor.store_dispatched(0x200, sequence=7)
        assert predictor.predicted_store_for(0x100) == 7

    def test_store_completion_clears_dependence(self):
        predictor = StoreSetPredictor()
        predictor.train_violation(load_pc=0x100, store_pc=0x200)
        predictor.store_dispatched(0x200, sequence=7)
        predictor.store_completed(0x200, sequence=7)
        assert predictor.predicted_store_for(0x100) is None

    def test_merging_sets(self):
        predictor = StoreSetPredictor()
        predictor.train_violation(0x100, 0x200)
        predictor.train_violation(0x300, 0x200)
        predictor.store_dispatched(0x200, sequence=3)
        assert predictor.predicted_store_for(0x100) == 3
        assert predictor.predicted_store_for(0x300) == 3


class TestFunctionalUnits:
    def test_baseline_integer_bandwidth(self):
        pool = FunctionalUnitPool(baseline_config())
        pool.begin_cycle(0)
        issued = sum(1 for _ in range(10) if pool.issue_int())
        assert issued == baseline_config().int_alu_units

    def test_load_and_store_ports(self):
        pool = FunctionalUnitPool(baseline_config())
        pool.begin_cycle(0)
        assert pool.issue_load() and pool.issue_load()
        assert not pool.issue_load()
        assert pool.issue_store()
        assert not pool.issue_store()

    def test_alu_pipelines_accept_singletons(self):
        config = integer_minigraph_config()
        pool = FunctionalUnitPool(config)
        pool.begin_cycle(0)
        issued = sum(1 for _ in range(10) if pool.issue_int())
        # Two plain ALUs + two pipeline inputs = unchanged singleton bandwidth.
        assert issued == config.int_alu_units

    def test_integer_handles_need_a_pipeline(self):
        pool = FunctionalUnitPool(baseline_config())
        pool.begin_cycle(0)
        assert not pool.can_issue_integer_handle()
        pool = FunctionalUnitPool(integer_minigraph_config())
        pool.begin_cycle(0)
        assert pool.issue_integer_handle()
        assert pool.issue_integer_handle()
        assert not pool.issue_integer_handle()

    def test_sliding_window_reserves_future_units(self):
        config = integer_memory_minigraph_config()
        pool = FunctionalUnitPool(config)
        pool.begin_cycle(0)
        fubmp = (None, FU_ALU, FU_ALU)
        assert pool.issue_memory_handle(FU_LOAD, fubmp)
        # Only one integer-memory handle per cycle.
        assert not pool.can_issue_memory_handle(FU_LOAD, fubmp)
        # The reservation holds ALU capacity two cycles later.
        pool.begin_cycle(2)
        issued = sum(1 for _ in range(10) if pool.issue_int())
        assert issued == config.plain_alu_units + config.alu_pipelines - 1


class TestConfigs:
    def test_baseline_parameters_match_paper(self):
        config = baseline_config()
        assert config.fetch_width == 6
        assert config.rob_size == 128
        assert config.issue_queue_size == 50
        assert config.lsq_size == 64
        assert config.physical_registers == 164
        assert config.int_alu_units == 4 and config.load_ports == 2

    def test_minigraph_configs(self):
        integer = integer_minigraph_config()
        assert integer.alu_pipelines == 2
        assert integer.plain_alu_units == 2
        memory = integer_memory_minigraph_config(collapsing=True)
        assert memory.sliding_window_scheduler
        assert memory.collapsing_alu_pipelines

    def test_register_file_variant(self):
        reduced = baseline_config().with_physical_registers(104)
        assert reduced.in_flight_registers == 40

    def test_width_variant(self):
        narrow = baseline_config().with_width(4, execute_width=6, load_ports=2)
        assert narrow.fetch_width == 4
        assert narrow.issue_width == 6
        assert narrow.load_ports == 2

    def test_scheduler_variant(self):
        pipelined = baseline_config().with_scheduler_latency(2)
        assert pipelined.scheduler_latency == 2
