"""Tests for the synthetic workload suites."""

import pytest

from repro.program import ControlFlowGraph
from repro.sim import run_program
from repro.workloads import (
    REGISTRY,
    SUITE_NAMES,
    WorkloadError,
    benchmark_names,
    get_benchmark,
    load_benchmark,
    suite_benchmarks,
)
from repro.workloads.base import LinearCongruentialGenerator


class TestRegistry:
    def test_all_suites_populated(self):
        for suite in SUITE_NAMES:
            assert len(benchmark_names(suite)) >= 5, suite

    def test_total_benchmark_count(self):
        assert len(REGISTRY) >= 30

    def test_unknown_benchmark_raises(self):
        with pytest.raises(WorkloadError):
            get_benchmark("does-not-exist")

    def test_unknown_suite_raises(self):
        with pytest.raises(WorkloadError):
            benchmark_names("unknown-suite")

    def test_unknown_input_raises(self):
        with pytest.raises(WorkloadError):
            get_benchmark("gcc").source("enormous")

    def test_descriptions_present(self):
        for benchmark in REGISTRY.all():
            assert benchmark.description, benchmark.name

    def test_suite_lookup(self):
        media = suite_benchmarks("media")
        assert all(benchmark.suite == "media" for benchmark in media)


class TestDeterminism:
    def test_prng_is_deterministic(self):
        a = LinearCongruentialGenerator(42).sequence(16, 1000)
        b = LinearCongruentialGenerator(42).sequence(16, 1000)
        assert a == b

    def test_program_build_is_deterministic(self):
        first = load_benchmark("sha")
        second = load_benchmark("sha")
        assert [str(i) for i in first.instructions] == [str(i) for i in second.instructions]
        assert first.data == second.data

    def test_train_input_differs_from_reference(self):
        reference = load_benchmark("gsm.toast", "reference")
        train = load_benchmark("gsm.toast", "train")
        assert reference.data != train.data


@pytest.mark.parametrize("name", benchmark_names())
def test_every_kernel_assembles_runs_and_terminates(name):
    program = load_benchmark(name)
    result = run_program(program, max_instructions=60_000)
    assert result.halted, f"{name} did not reach halt within the budget"
    assert result.instructions_executed > 1_000, name


@pytest.mark.parametrize("name", ["listchase", "fnvmix"])
def test_long_horizon_kernels_stress_trace_volume(name):
    """The trace-volume stressors commit an order of magnitude more entries
    than the rest of the embedded suite (they exist to exercise the columnar
    trace pipeline at volume) while still halting within their budget."""
    result = run_program(load_benchmark(name), max_instructions=60_000)
    assert result.halted, name
    assert result.entries_committed > 40_000, name
    assert len(result.trace) == result.entries_committed


@pytest.mark.parametrize("name", ["listchase", "fnvmix"])
def test_long_horizon_kernels_have_character(name):
    """listchase must be load-latency bound, fnvmix a serial ALU recurrence."""
    result = run_program(load_benchmark(name), max_instructions=60_000)
    loads = result.trace.load_count()
    slots = result.trace.pipeline_slot_count()
    if name == "listchase":
        assert loads / slots > 0.2, "pointer chase should be load dense"
    else:
        assert result.trace.store_count() == 0, "fnvmix is a pure reduction"
        assert loads / slots < 0.15, "fnvmix should be ALU-chain dominated"


@pytest.mark.parametrize("suite", SUITE_NAMES)
def test_suite_structure_matches_its_character(suite):
    """SPEC-like kernels must be branchier / smaller-blocked than media kernels."""
    sizes = []
    for name in benchmark_names(suite):
        cfg = ControlFlowGraph(load_benchmark(name))
        sizes.append(cfg.block_statistics()["mean_block_size"])
    mean_block_size = sum(sizes) / len(sizes)
    if suite == "spec":
        assert mean_block_size < 9.0
    if suite == "media":
        assert mean_block_size > 4.0


def test_spec_static_footprint_is_largest():
    def static_size(suite):
        return sum(len(load_benchmark(name)) for name in benchmark_names(suite)) \
            / len(benchmark_names(suite))
    assert static_size("spec") > static_size("embedded")
