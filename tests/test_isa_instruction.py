"""Tests for the Instruction dataclass and register namespace."""

import pytest

from repro.isa.instruction import Instruction, format_instruction, make_handle, make_nop
from repro.isa.registers import (
    NUM_ARCH_REGS,
    ZERO_REG,
    FP_ZERO_REG,
    RegisterError,
    fp_reg,
    int_reg,
    is_fp_reg,
    is_int_reg,
    is_zero_reg,
    parse_reg,
    reg_name,
)


class TestRegisters:
    def test_int_and_fp_ranges(self):
        assert is_int_reg(0)
        assert is_int_reg(31)
        assert is_fp_reg(32)
        assert is_fp_reg(63)
        assert not is_int_reg(32)
        assert not is_fp_reg(64)

    def test_zero_registers(self):
        assert is_zero_reg(ZERO_REG)
        assert is_zero_reg(FP_ZERO_REG)
        assert not is_zero_reg(0)

    def test_reg_name_round_trip(self):
        for reg in range(NUM_ARCH_REGS):
            assert parse_reg(reg_name(reg)) == reg

    def test_parse_aliases(self):
        assert parse_reg("zero") == ZERO_REG
        assert parse_reg("sp") == 30
        assert parse_reg("ra") == 26

    def test_parse_rejects_garbage(self):
        with pytest.raises(RegisterError):
            parse_reg("x5")
        with pytest.raises(RegisterError):
            parse_reg("r99")

    def test_constructors_reject_out_of_range(self):
        with pytest.raises(RegisterError):
            int_reg(32)
        with pytest.raises(RegisterError):
            fp_reg(-1)


class TestInstruction:
    def test_alu_instruction_sources_and_dest(self):
        insn = Instruction("addl", rd=3, rs1=1, rs2=2)
        assert insn.source_registers() == (1, 2)
        assert insn.destination_register() == 3

    def test_zero_register_reads_are_not_dependences(self):
        insn = Instruction("addl", rd=3, rs1=ZERO_REG, rs2=2)
        assert insn.source_registers() == (2,)

    def test_write_to_zero_register_is_discarded(self):
        insn = Instruction("addl", rd=ZERO_REG, rs1=1, rs2=2)
        assert insn.destination_register() is None

    def test_missing_operand_raises(self):
        with pytest.raises(ValueError):
            Instruction("addl", rd=3, rs1=1)  # missing rs2

    def test_load_store_classification(self):
        load = Instruction("ldq", rd=2, rs1=4, imm=16)
        store = Instruction("stq", rs1=4, rs2=2, imm=8)
        assert load.is_load and load.is_memory and not load.is_store
        assert store.is_store and store.is_memory and not store.is_load
        assert store.destination_register() is None

    def test_branch_instruction(self):
        branch = Instruction("bne", rs1=7, target="loop")
        assert branch.is_branch
        assert branch.is_direct_control
        assert branch.source_registers() == (7,)

    def test_handle_construction(self):
        handle = make_handle(18, 5, 18, 12)
        assert handle.is_handle
        assert handle.mgid == 12
        assert handle.rs1 == 18 and handle.rs2 == 5 and handle.rd == 18

    def test_handle_with_missing_fields_uses_zero_register(self):
        handle = make_handle(4, None, 17, 34)
        assert handle.rs2 == ZERO_REG
        assert handle.source_registers() == (4,)

    def test_mgid_on_non_handle_raises(self):
        with pytest.raises(ValueError):
            _ = Instruction("addl", rd=1, rs1=1, rs2=2).mgid

    def test_nop_and_halt(self):
        assert make_nop().is_nop
        assert Instruction("halt").is_halt

    def test_renamed_substitution(self):
        insn = Instruction("addl", rd=3, rs1=1, rs2=2)
        renamed = insn.renamed({1: 10, 3: 30})
        assert renamed.rs1 == 10 and renamed.rs2 == 2 and renamed.rd == 30

    def test_with_target(self):
        branch = Instruction("bne", rs1=7, target="a")
        retargeted = branch.with_target("b", 0x2000)
        assert retargeted.target == "b"
        assert retargeted.imm == 0x2000


class TestFormatting:
    def test_format_matches_paper_style(self):
        assert format_instruction(Instruction("addl", rd=18, rs1=18, rs2=2)) == "addl r18,r2,r18"
        assert format_instruction(Instruction("ldq", rd=2, rs1=4, imm=16)) == "ldq r2,16(r4)"
        assert format_instruction(make_handle(18, 5, 18, 12)) == "mg r18,r5,r18,12"

    def test_format_store(self):
        text = format_instruction(Instruction("stq", rs1=4, rs2=2, imm=8))
        assert text == "stq r2,8(r4)"

    def test_format_branch_with_label(self):
        text = format_instruction(Instruction("bne", rs1=7, target="loop"))
        assert text == "bne r7,loop"
