"""The batched multi-machine timing kernel: bit-identity with the scalar path.

``BatchedTimingSimulator`` drives one decoded columnar trace through many
``MachineConfig`` lanes per pass; everything the grid engine builds on it —
``Session.prime_timing``, the planner's ``timing_batches``, ``run_grid``'s
batched stages — promises rows *bit-identical* to scalar
``simulate_program``.  These tests pin that promise: golden-stats identity,
per-lane equality across the full divergent-geometry machine catalog,
lane-partition boundaries (1, M, M+1 machines), per-lane admission-error
isolation (one ``fp_units=0`` lane must not poison its siblings), and
``--resume`` interop between scalar- and batched-produced row artifacts in
both directions.
"""

import dataclasses
import json
import math
from pathlib import Path

import pytest

from repro import prepare_minigraph_run
from repro.api import RunSpec, Session
from repro.grid.planner import pack_lane_groups, timing_batches
from repro.sim.functional import run_program
from repro.uarch.batch import (
    DEFAULT_MAX_LANES,
    BatchedTimingSimulator,
    TimingLane,
    simulate_many,
)
from repro.uarch.catalog import machine_config, machine_names
from repro.uarch.config import ConfigError, baseline_config
from repro.uarch.pipeline import TimingError, simulate_program
from repro.workloads import load_benchmark

GOLDEN_PATH = Path(__file__).parent / "golden" / "timing_stats.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

BUDGET = 3_000


def _stats_equal(a, b) -> bool:
    return dataclasses.asdict(a) == dataclasses.asdict(b)


def _scalar_outcomes(program, trace, configs, **kwargs):
    """Reference lane outcomes: stats, or the (type, message) of the error."""
    outcomes = []
    for config in configs:
        try:
            outcomes.append(simulate_program(program, trace, config, **kwargs))
        except (ConfigError, TimingError) as error:
            outcomes.append((type(error).__name__, str(error)))
    return outcomes


class TestGoldenIdentity:
    """Batched timing must reproduce the pinned golden statistics."""

    @pytest.mark.parametrize("workload", sorted(GOLDEN))
    def test_primed_timing_matches_golden_stats(self, workload):
        expected = GOLDEN[workload]
        session = Session()
        spec = RunSpec(benchmark=workload, budget=expected["budget"])
        primed = session.prime_timing([spec])
        assert primed >= 2                     # baseline + mini-graph lanes
        # The baseline-trace and mini-graph-trace lane groups pack into one
        # cross-trace pass (they total well under the lane cap).
        assert session.stats.batched_timing_passes == 1
        assert session.stats.batched_timing_cross_trace_lanes == primed
        assert session.stats.batched_timing_shared_trace_lanes == 0
        timing_runs_after_prime = session.stats.timing_runs
        artifacts = session.run(spec)
        # The run must be served from the primed cache — no scalar timing.
        assert session.stats.timing_runs == timing_runs_after_prime
        assert artifacts.baseline_timing.as_dict() == expected["baseline"], \
            f"{workload}: batched baseline timing diverged from golden"
        assert artifacts.timing.as_dict() == expected["minigraph"], \
            f"{workload}: batched mini-graph timing diverged from golden"


class TestCatalogEquivalence:
    """Every catalog machine, as one divergent-geometry batched pass."""

    def test_baseline_trace_all_catalog_machines(self):
        program = load_benchmark("bitcount", "reference")
        trace = run_program(program, max_instructions=BUDGET).trace
        configs = [machine_config(name) for name in machine_names()]
        expected = _scalar_outcomes(program, trace, configs)
        batch = BatchedTimingSimulator(program, trace, configs)
        results = batch.run()
        assert not batch.lane_errors
        for lane, expect in enumerate(expected):
            assert _stats_equal(results[lane], expect), \
                f"lane {lane} ({configs[lane].name}) diverged from scalar"

    @pytest.mark.parametrize("compressed", (False, True))
    def test_minigraph_trace_lane_errors_match_scalar(self, compressed):
        """Handle-bearing traces: stats and per-lane errors both match."""
        program = load_benchmark("crc", "reference")
        run = prepare_minigraph_run(program, budget=BUDGET)
        configs = [machine_config(name) for name in machine_names()]
        expected = _scalar_outcomes(run.rewritten, run.rewritten_result.trace,
                                    configs, mgt=run.mgt,
                                    compressed_layout=compressed)
        batch = BatchedTimingSimulator(run.rewritten,
                                       run.rewritten_result.trace, configs,
                                       mgt=run.mgt,
                                       compressed_layout=compressed)
        results = batch.run()
        # The catalog mixes handle-capable and plain machines, so some lanes
        # must reject the handle trace — exactly as the scalar path does.
        assert any(isinstance(item, tuple) for item in expected)
        for lane, expect in enumerate(expected):
            error = batch.lane_errors.get(lane)
            if isinstance(expect, tuple):
                assert error is not None, \
                    f"lane {lane} should have raised {expect[0]}"
                assert (type(error).__name__, str(error)) == expect
            else:
                assert error is None, f"lane {lane}: unexpected {error!r}"
                assert _stats_equal(results[lane], expect), \
                    f"lane {lane} ({configs[lane].name}) diverged from scalar"

    def test_simulate_many_single_lane_equals_simulate_program(self):
        program = load_benchmark("fnvmix", "reference")
        trace = run_program(program, max_instructions=BUDGET).trace
        config = baseline_config()
        [stats] = simulate_many(program, trace, [config])
        assert _stats_equal(stats, simulate_program(program, trace, config))


class TestLanePartitioning:
    """1, M and M+1 machines split into bounded passes with identical rows."""

    def _specs(self, count):
        # Distinct resolved identities only: the lane collector collapses
        # machines that differ in display name alone (e.g. the catalog's
        # baseline vs prf164), which would under-fill the partitions.
        configs, seen = [], set()
        for name in machine_names():
            config = machine_config(name)
            key = config.resolve().key
            if key not in seen:
                seen.add(key)
                configs.append(config)
        assert len(configs) > DEFAULT_MAX_LANES   # M+1 is a real boundary
        configs = configs[:count]
        return [RunSpec(benchmark="bitcount", budget=BUDGET, policy=None,
                        machine=config, baseline_machine=config)
                for config in configs]

    @pytest.mark.parametrize("count", (1, DEFAULT_MAX_LANES,
                                       DEFAULT_MAX_LANES + 1))
    def test_boundary_counts_prime_identical_stats(self, count):
        specs = self._specs(count)
        session = Session()
        primed = session.prime_timing(specs)
        assert primed == count
        assert session.stats.batched_timing_passes \
            == math.ceil(count / DEFAULT_MAX_LANES)
        assert session.stats.batched_timing_lanes == count
        scalar = Session()
        for spec in specs:
            batched = session.run(spec).timing
            reference = scalar.run(spec).timing
            assert _stats_equal(batched, reference)

    def test_planner_timing_batches_partition(self):
        specs = self._specs(DEFAULT_MAX_LANES + 1)
        batches = timing_batches(specs)
        assert [batch.lane_count for batch in batches] \
            == [DEFAULT_MAX_LANES, 1]
        assert all(not batch.minigraph for batch in batches)
        # Lane order is deterministic: input order, duplicates collapsed.
        assert batches == timing_batches(specs)

    def test_max_lanes_one_degenerates_to_scalar_batches(self):
        specs = self._specs(3)
        batches = timing_batches(specs, max_lanes=1)
        assert [batch.lane_count for batch in batches] == [1, 1, 1]


class TestAdmissionIsolation:
    """One inadmissible lane raises for itself without poisoning siblings."""

    def _fp_program(self):
        from repro.fuzz.generator import SynthSpec, generate_program
        spec = SynthSpec.sample(1004).with_dials(fp_density=40)
        program = generate_program(spec, "reference")
        trace = run_program(program, max_instructions=10_000).trace
        return program, trace

    def test_fp_units_zero_lane_errors_alone(self):
        program, trace = self._fp_program()
        good = baseline_config()
        bad = dataclasses.replace(good, name="fp-less", fp_units=0)
        batch = BatchedTimingSimulator(program, trace, [good, bad, good])
        results = batch.run()
        assert set(batch.lane_errors) == {1}
        error = batch.lane_errors[1]
        assert isinstance(error, ConfigError)
        # The error is the scalar admission error, verbatim.
        with pytest.raises(ConfigError) as scalar:
            simulate_program(program, trace, bad)
        assert str(error) == str(scalar.value)
        reference = simulate_program(program, trace, good)
        assert _stats_equal(results[0], reference)
        assert _stats_equal(results[2], reference)

    def test_simulate_many_raises_first_lane_error(self):
        program, trace = self._fp_program()
        bad = dataclasses.replace(baseline_config(), name="fp-less",
                                  fp_units=0)
        with pytest.raises(ConfigError):
            simulate_many(program, trace, [baseline_config(), bad])


class TestCrossTraceKernel:
    """Lanes over different decoded traces retire through one fused pass."""

    def test_mixed_trace_catalog_matrix(self):
        # The catalog equivalence matrix, extended to mixed-trace groups:
        # bitcount's baseline trace and crc's handle-bearing mini-graph
        # trace interleave through every catalog machine in one pass.
        bit = load_benchmark("bitcount", "reference")
        bit_trace = run_program(bit, max_instructions=BUDGET).trace
        crc = prepare_minigraph_run(load_benchmark("crc", "reference"),
                                    budget=BUDGET)
        configs = [machine_config(name) for name in machine_names()]
        lanes, expected = [], []
        for index, config in enumerate(configs):
            if index % 2:
                lanes.append(TimingLane(crc.rewritten,
                                        crc.rewritten_result.trace, config,
                                        mgt=crc.mgt))
                expected.append(_scalar_outcomes(
                    crc.rewritten, crc.rewritten_result.trace, [config],
                    mgt=crc.mgt)[0])
            else:
                lanes.append(TimingLane(bit, bit_trace, config))
                expected.append(_scalar_outcomes(bit, bit_trace,
                                                 [config])[0])
        batch = BatchedTimingSimulator.from_lanes(lanes)
        assert batch.cross_trace and batch.trace_count == 2
        results = batch.run()
        # Plain machines on the handle trace must still error per lane.
        assert any(isinstance(item, tuple) for item in expected)
        for lane, expect in enumerate(expected):
            error = batch.lane_errors.get(lane)
            if isinstance(expect, tuple):
                assert error is not None, \
                    f"lane {lane} should have raised {expect[0]}"
                assert (type(error).__name__, str(error)) == expect
            else:
                assert error is None, f"lane {lane}: unexpected {error!r}"
                assert _stats_equal(results[lane], expect), \
                    f"lane {lane} ({configs[lane].name}) diverged from scalar"

    def test_lanes_finish_at_different_cycles(self):
        # A short trace retires early while its long sibling keeps going;
        # both lanes' stats equal their own scalar runs.
        short_prog = load_benchmark("fnvmix", "reference")
        short_trace = run_program(short_prog, max_instructions=120).trace
        long_prog = load_benchmark("bitcount", "reference")
        long_trace = run_program(long_prog, max_instructions=BUDGET).trace
        assert len(short_trace) < len(long_trace)
        configs = [baseline_config(), machine_config("prf144")]
        batch = BatchedTimingSimulator.from_lanes(
            [TimingLane(short_prog, short_trace, configs[0]),
             TimingLane(long_prog, long_trace, configs[0]),
             TimingLane(short_prog, short_trace, configs[1]),
             TimingLane(long_prog, long_trace, configs[1])])
        results = batch.run()
        assert batch.cross_trace and not batch.lane_errors
        for lane, (program, trace) in enumerate(
                [(short_prog, short_trace), (long_prog, long_trace)] * 2):
            reference = simulate_program(program, trace,
                                         configs[lane // 2])
            assert _stats_equal(results[lane], reference), \
                f"lane {lane} diverged from scalar"

    def test_one_entry_trace_batched_with_40k_trace(self):
        # Extreme skew: one committed entry beside ~40k entries.  The short
        # lane must cost one entry — whole-lane retirement, no padding —
        # and both rows stay bit-identical to scalar.
        tiny_prog = load_benchmark("bitcount", "reference")
        tiny_trace = run_program(tiny_prog, max_instructions=1).trace
        big_prog = load_benchmark("listchase", "reference")
        big_trace = run_program(big_prog, max_instructions=45_000).trace
        assert len(tiny_trace) == 1
        assert len(big_trace) > 40_000
        config = baseline_config()
        batch = BatchedTimingSimulator.from_lanes(
            [TimingLane(tiny_prog, tiny_trace, config),
             TimingLane(big_prog, big_trace, config)])
        results = batch.run()
        assert batch.cross_trace and not batch.lane_errors
        assert _stats_equal(results[0],
                            simulate_program(tiny_prog, tiny_trace, config))
        assert _stats_equal(results[1],
                            simulate_program(big_prog, big_trace, config))

    def test_admission_error_lane_in_mixed_group(self):
        # An inadmissible lane in a mixed-trace pass errors alone; sibling
        # lanes over the other trace are untouched.
        from repro.fuzz.generator import SynthSpec, generate_program
        spec = SynthSpec.sample(1004).with_dials(fp_density=40)
        fp_prog = generate_program(spec, "reference")
        fp_trace = run_program(fp_prog, max_instructions=10_000).trace
        other = load_benchmark("crc", "reference")
        other_trace = run_program(other, max_instructions=BUDGET).trace
        good = baseline_config()
        bad = dataclasses.replace(good, name="fp-less", fp_units=0)
        batch = BatchedTimingSimulator.from_lanes(
            [TimingLane(other, other_trace, good),
             TimingLane(fp_prog, fp_trace, bad),
             TimingLane(fp_prog, fp_trace, good)])
        results = batch.run()
        assert batch.cross_trace
        assert set(batch.lane_errors) == {1}
        with pytest.raises(ConfigError) as scalar:
            simulate_program(fp_prog, fp_trace, bad)
        assert str(batch.lane_errors[1]) == str(scalar.value)
        assert _stats_equal(results[0],
                            simulate_program(other, other_trace, good))
        assert _stats_equal(results[2],
                            simulate_program(fp_prog, fp_trace, good))


class TestLanePacking:
    """The planner's longest-first best-fit bin-pack of lane groups."""

    def test_full_bins_then_best_fit_remainders(self):
        # Group 1 (longest trace) fills a whole pass of 8; its remainder
        # opens a second pass that then absorbs both shorter groups whole.
        shapes = [(3, 10), (9, 50), (4, 5)]
        bins = pack_lane_groups(shapes, 8)
        assert bins == [[(1, 0, 8)], [(1, 8, 9), (0, 0, 3), (2, 0, 4)]]
        assert bins == pack_lane_groups(shapes, 8)   # deterministic

    def test_best_fit_prefers_tightest_open_pass(self):
        # Free space 3 vs 2: the 2-lane group lands in the tighter pass.
        bins = pack_lane_groups([(5, 30), (6, 20), (2, 10)], 8)
        assert bins == [[(0, 0, 5)], [(1, 0, 6), (2, 0, 2)]]

    def test_remainders_are_never_split(self):
        # A 5-lane group does not fit the 2 free slots; it opens a new
        # pass whole so its behavior-key dedup stays intact.
        bins = pack_lane_groups([(6, 30), (5, 20)], 8)
        assert bins == [[(0, 0, 6)], [(1, 0, 5)]]

    def test_timing_batches_pack_across_traces(self):
        # Two specs contribute four one-lane groups (two baseline traces,
        # two mini-graph traces); they pack into a single cross-trace pass.
        specs = [RunSpec(benchmark="bitcount", budget=BUDGET),
                 RunSpec(benchmark="crc", budget=BUDGET)]
        batches = timing_batches(specs)
        assert len(batches) == 1
        [batch] = batches
        assert batch.cross_trace
        assert batch.trace_count == 4
        assert batch.lane_count == 4
        # Capping at 2 lanes splits into two passes, each still spanning
        # two traces.
        halves = timing_batches(specs, max_lanes=2)
        assert [item.lane_count for item in halves] == [2, 2]
        assert all(item.cross_trace for item in halves)


class TestMaxLanesCli:
    """``--max-lanes`` is validated and plumbed through ``repro grid``."""

    def test_grid_rejects_non_positive_max_lanes(self, capsys):
        from repro.api.cli import main
        assert main(["--no-disk-cache", "grid", "--name", "mini",
                     "--max-lanes", "0"]) == 2
        assert "--max-lanes" in capsys.readouterr().err

    def test_bench_rejects_non_positive_max_lanes(self, capsys):
        from repro.api.cli import main
        assert main(["--no-disk-cache", "bench", "--max-lanes", "-3"]) == 2
        assert "--max-lanes" in capsys.readouterr().err

    def test_grid_runs_with_lane_cap(self, capsys):
        from repro.api.cli import main
        assert main(["--no-disk-cache", "--json", "grid", "--name", "mini",
                     "--budget", str(BUDGET), "--workers", "0",
                     "--max-lanes", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"] == 4


class TestResumeInterop:
    """Row artifacts are shared currency between scalar and batched runs."""

    def _grid(self):
        from repro.grid import Axis, GridSpec
        from repro.minigraph.policies import DEFAULT_POLICY

        axes = (Axis("benchmark", ("bitcount", "crc")),
                Axis("mode", ("int-mem", "baseline")))

        def build(point):
            policy = DEFAULT_POLICY if point["mode"] == "int-mem" else None
            # Skewed budgets: the batched direction packs short and long
            # traces into one cross-trace pass with early lane retirement.
            budget = BUDGET if point["benchmark"] == "bitcount" else 400
            return RunSpec(benchmark=point["benchmark"], budget=budget,
                           policy=policy)

        return GridSpec(name="interop-grid", axes=axes, build=build)

    @pytest.mark.parametrize("first_batched", (True, False))
    def test_resume_across_kernels_both_directions(self, tmp_path,
                                                   first_batched):
        grid = self._grid()
        cache = tmp_path / "cache"
        with Session(cache_dir=cache) as producer:
            fresh = list(producer.run_grid(grid, workers=0,
                                           batch=first_batched))
        with Session(cache_dir=cache) as consumer:
            resumed = list(consumer.run_grid(grid, workers=0, resume=True,
                                             batch=not first_batched))
        assert all(row.resumed for row in resumed)
        assert [row.as_dict() | {"resumed": False} for row in resumed] \
            == [row.as_dict() for row in fresh]

    def test_batched_and_scalar_rows_are_bit_identical(self):
        grid = self._grid()
        session = Session()
        batched = list(session.run_grid(grid, workers=0, batch=True))
        # The grid's lanes span several decoded traces, so the batched
        # direction must actually have exercised the cross-trace kernel.
        assert session.stats.batched_timing_cross_trace_lanes > 0
        scalar = list(Session().run_grid(grid, workers=0, batch=False))
        assert [row.as_dict() for row in batched] \
            == [row.as_dict() for row in scalar]
