"""The batched multi-machine timing kernel: bit-identity with the scalar path.

``BatchedTimingSimulator`` drives one decoded columnar trace through many
``MachineConfig`` lanes per pass; everything the grid engine builds on it —
``Session.prime_timing``, the planner's ``timing_batches``, ``run_grid``'s
batched stages — promises rows *bit-identical* to scalar
``simulate_program``.  These tests pin that promise: golden-stats identity,
per-lane equality across the full divergent-geometry machine catalog,
lane-partition boundaries (1, M, M+1 machines), per-lane admission-error
isolation (one ``fp_units=0`` lane must not poison its siblings), and
``--resume`` interop between scalar- and batched-produced row artifacts in
both directions.
"""

import dataclasses
import json
import math
from pathlib import Path

import pytest

from repro import prepare_minigraph_run
from repro.api import RunSpec, Session
from repro.grid.planner import timing_batches
from repro.sim.functional import run_program
from repro.uarch.batch import (
    DEFAULT_MAX_LANES,
    BatchedTimingSimulator,
    simulate_many,
)
from repro.uarch.catalog import machine_config, machine_names
from repro.uarch.config import ConfigError, baseline_config
from repro.uarch.pipeline import TimingError, simulate_program
from repro.workloads import load_benchmark

GOLDEN_PATH = Path(__file__).parent / "golden" / "timing_stats.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

BUDGET = 3_000


def _stats_equal(a, b) -> bool:
    return dataclasses.asdict(a) == dataclasses.asdict(b)


def _scalar_outcomes(program, trace, configs, **kwargs):
    """Reference lane outcomes: stats, or the (type, message) of the error."""
    outcomes = []
    for config in configs:
        try:
            outcomes.append(simulate_program(program, trace, config, **kwargs))
        except (ConfigError, TimingError) as error:
            outcomes.append((type(error).__name__, str(error)))
    return outcomes


class TestGoldenIdentity:
    """Batched timing must reproduce the pinned golden statistics."""

    @pytest.mark.parametrize("workload", sorted(GOLDEN))
    def test_primed_timing_matches_golden_stats(self, workload):
        expected = GOLDEN[workload]
        session = Session()
        spec = RunSpec(benchmark=workload, budget=expected["budget"])
        primed = session.prime_timing([spec])
        assert primed >= 2                     # baseline + mini-graph lanes
        assert session.stats.batched_timing_passes >= 2
        timing_runs_after_prime = session.stats.timing_runs
        artifacts = session.run(spec)
        # The run must be served from the primed cache — no scalar timing.
        assert session.stats.timing_runs == timing_runs_after_prime
        assert artifacts.baseline_timing.as_dict() == expected["baseline"], \
            f"{workload}: batched baseline timing diverged from golden"
        assert artifacts.timing.as_dict() == expected["minigraph"], \
            f"{workload}: batched mini-graph timing diverged from golden"


class TestCatalogEquivalence:
    """Every catalog machine, as one divergent-geometry batched pass."""

    def test_baseline_trace_all_catalog_machines(self):
        program = load_benchmark("bitcount", "reference")
        trace = run_program(program, max_instructions=BUDGET).trace
        configs = [machine_config(name) for name in machine_names()]
        expected = _scalar_outcomes(program, trace, configs)
        batch = BatchedTimingSimulator(program, trace, configs)
        results = batch.run()
        assert not batch.lane_errors
        for lane, expect in enumerate(expected):
            assert _stats_equal(results[lane], expect), \
                f"lane {lane} ({configs[lane].name}) diverged from scalar"

    @pytest.mark.parametrize("compressed", (False, True))
    def test_minigraph_trace_lane_errors_match_scalar(self, compressed):
        """Handle-bearing traces: stats and per-lane errors both match."""
        program = load_benchmark("crc", "reference")
        run = prepare_minigraph_run(program, budget=BUDGET)
        configs = [machine_config(name) for name in machine_names()]
        expected = _scalar_outcomes(run.rewritten, run.rewritten_result.trace,
                                    configs, mgt=run.mgt,
                                    compressed_layout=compressed)
        batch = BatchedTimingSimulator(run.rewritten,
                                       run.rewritten_result.trace, configs,
                                       mgt=run.mgt,
                                       compressed_layout=compressed)
        results = batch.run()
        # The catalog mixes handle-capable and plain machines, so some lanes
        # must reject the handle trace — exactly as the scalar path does.
        assert any(isinstance(item, tuple) for item in expected)
        for lane, expect in enumerate(expected):
            error = batch.lane_errors.get(lane)
            if isinstance(expect, tuple):
                assert error is not None, \
                    f"lane {lane} should have raised {expect[0]}"
                assert (type(error).__name__, str(error)) == expect
            else:
                assert error is None, f"lane {lane}: unexpected {error!r}"
                assert _stats_equal(results[lane], expect), \
                    f"lane {lane} ({configs[lane].name}) diverged from scalar"

    def test_simulate_many_single_lane_equals_simulate_program(self):
        program = load_benchmark("fnvmix", "reference")
        trace = run_program(program, max_instructions=BUDGET).trace
        config = baseline_config()
        [stats] = simulate_many(program, trace, [config])
        assert _stats_equal(stats, simulate_program(program, trace, config))


class TestLanePartitioning:
    """1, M and M+1 machines split into bounded passes with identical rows."""

    def _specs(self, count):
        # Distinct resolved identities only: the lane collector collapses
        # machines that differ in display name alone (e.g. the catalog's
        # baseline vs prf164), which would under-fill the partitions.
        configs, seen = [], set()
        for name in machine_names():
            config = machine_config(name)
            key = config.resolve().key
            if key not in seen:
                seen.add(key)
                configs.append(config)
        assert len(configs) > DEFAULT_MAX_LANES   # M+1 is a real boundary
        configs = configs[:count]
        return [RunSpec(benchmark="bitcount", budget=BUDGET, policy=None,
                        machine=config, baseline_machine=config)
                for config in configs]

    @pytest.mark.parametrize("count", (1, DEFAULT_MAX_LANES,
                                       DEFAULT_MAX_LANES + 1))
    def test_boundary_counts_prime_identical_stats(self, count):
        specs = self._specs(count)
        session = Session()
        primed = session.prime_timing(specs)
        assert primed == count
        assert session.stats.batched_timing_passes \
            == math.ceil(count / DEFAULT_MAX_LANES)
        assert session.stats.batched_timing_lanes == count
        scalar = Session()
        for spec in specs:
            batched = session.run(spec).timing
            reference = scalar.run(spec).timing
            assert _stats_equal(batched, reference)

    def test_planner_timing_batches_partition(self):
        specs = self._specs(DEFAULT_MAX_LANES + 1)
        batches = timing_batches(specs)
        assert [batch.lane_count for batch in batches] \
            == [DEFAULT_MAX_LANES, 1]
        assert all(not batch.minigraph for batch in batches)
        # Lane order is deterministic: input order, duplicates collapsed.
        assert batches == timing_batches(specs)

    def test_max_lanes_one_degenerates_to_scalar_batches(self):
        specs = self._specs(3)
        batches = timing_batches(specs, max_lanes=1)
        assert [batch.lane_count for batch in batches] == [1, 1, 1]


class TestAdmissionIsolation:
    """One inadmissible lane raises for itself without poisoning siblings."""

    def _fp_program(self):
        from repro.fuzz.generator import SynthSpec, generate_program
        spec = SynthSpec.sample(1004).with_dials(fp_density=40)
        program = generate_program(spec, "reference")
        trace = run_program(program, max_instructions=10_000).trace
        return program, trace

    def test_fp_units_zero_lane_errors_alone(self):
        program, trace = self._fp_program()
        good = baseline_config()
        bad = dataclasses.replace(good, name="fp-less", fp_units=0)
        batch = BatchedTimingSimulator(program, trace, [good, bad, good])
        results = batch.run()
        assert set(batch.lane_errors) == {1}
        error = batch.lane_errors[1]
        assert isinstance(error, ConfigError)
        # The error is the scalar admission error, verbatim.
        with pytest.raises(ConfigError) as scalar:
            simulate_program(program, trace, bad)
        assert str(error) == str(scalar.value)
        reference = simulate_program(program, trace, good)
        assert _stats_equal(results[0], reference)
        assert _stats_equal(results[2], reference)

    def test_simulate_many_raises_first_lane_error(self):
        program, trace = self._fp_program()
        bad = dataclasses.replace(baseline_config(), name="fp-less",
                                  fp_units=0)
        with pytest.raises(ConfigError):
            simulate_many(program, trace, [baseline_config(), bad])


class TestResumeInterop:
    """Row artifacts are shared currency between scalar and batched runs."""

    def _grid(self):
        from repro.grid import Axis, GridSpec
        from repro.minigraph.policies import DEFAULT_POLICY

        axes = (Axis("benchmark", ("bitcount", "crc")),
                Axis("mode", ("int-mem", "baseline")))

        def build(point):
            policy = DEFAULT_POLICY if point["mode"] == "int-mem" else None
            return RunSpec(benchmark=point["benchmark"], budget=BUDGET,
                           policy=policy)

        return GridSpec(name="interop-grid", axes=axes, build=build)

    @pytest.mark.parametrize("first_batched", (True, False))
    def test_resume_across_kernels_both_directions(self, tmp_path,
                                                   first_batched):
        grid = self._grid()
        cache = tmp_path / "cache"
        with Session(cache_dir=cache) as producer:
            fresh = list(producer.run_grid(grid, workers=0,
                                           batch=first_batched))
        with Session(cache_dir=cache) as consumer:
            resumed = list(consumer.run_grid(grid, workers=0, resume=True,
                                             batch=not first_batched))
        assert all(row.resumed for row in resumed)
        assert [row.as_dict() | {"resumed": False} for row in resumed] \
            == [row.as_dict() for row in fresh]

    def test_batched_and_scalar_rows_are_bit_identical(self):
        grid = self._grid()
        batched = list(Session().run_grid(grid, workers=0, batch=True))
        scalar = list(Session().run_grid(grid, workers=0, batch=False))
        assert [row.as_dict() for row in batched] \
            == [row.as_dict() for row in scalar]
