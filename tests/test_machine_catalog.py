"""Machine catalog and MachineSpec resolution layer.

Pins the named Figure 6/8 configurations to the paper's Section 6
parameters, exercises construction-time geometry validation, and checks
that canonical machine keys are stable across processes (pool round-trip)
and independent of display names.
"""

import dataclasses
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.uarch import (
    CacheConfig,
    ConfigError,
    MachineConfig,
    baseline_config,
    integer_memory_minigraph_config,
    integer_minigraph_config,
    machine_catalog,
    machine_config,
    machine_names,
)


class TestBaselineParameters:
    """The catalog baseline is the paper's Section 6 processor, exactly."""

    def test_section6_baseline(self):
        config = machine_config("baseline")
        assert config == baseline_config()
        assert (config.fetch_width, config.rename_width,
                config.issue_width, config.retire_width) == (6, 6, 6, 6)
        assert config.rob_size == 128
        assert config.issue_queue_size == 50
        assert config.lsq_size == 64
        assert config.physical_registers == 164
        assert config.architected_registers == 64
        assert config.in_flight_registers == 100
        assert (config.int_alu_units, config.fp_units,
                config.load_ports, config.store_ports) == (4, 2, 2, 1)
        assert config.scheduler_latency == 1
        assert config.alu_pipelines == 0
        assert not config.sliding_window_scheduler
        assert config.icache == CacheConfig(32 * 1024, 2, 32, 1)
        assert config.dcache == CacheConfig(32 * 1024, 2, 32, 2)
        assert config.l2cache == CacheConfig(2 * 1024 * 1024, 4, 128, 10)
        assert config.memory_latency == 100


class TestFigure6Machines:
    def test_int_replaces_two_alus_with_pipelines(self):
        config = machine_config("int")
        assert config == integer_minigraph_config()
        assert config.alu_pipelines == 2
        assert config.alu_pipeline_depth == 4
        assert config.plain_alu_units == 2
        assert not config.collapsing_alu_pipelines
        assert not config.sliding_window_scheduler

    def test_collapse_variants_only_add_collapsing(self):
        for base_name in ("int", "int-mem"):
            base = machine_config(base_name)
            collapsed = machine_config(f"{base_name}+collapse")
            assert collapsed.collapsing_alu_pipelines
            assert dataclasses.replace(
                collapsed, collapsing_alu_pipelines=False,
                name=base.name) == base

    def test_int_mem_adds_the_sliding_window(self):
        config = machine_config("int-mem")
        assert config == integer_memory_minigraph_config()
        assert config.sliding_window_scheduler
        assert config.alu_pipelines == 2


class TestFigure8Machines:
    def test_register_file_variants(self):
        for registers in (164, 144, 124, 104):
            config = machine_config(f"prf{registers}")
            assert config.physical_registers == registers
            assert config.architected_registers == 64
            # Only the register file (and the name) may differ.
            assert dataclasses.replace(
                config, physical_registers=164,
                name="baseline-6wide") == baseline_config()

    def test_bandwidth_variants(self):
        assert machine_config("6-wide") == baseline_config()
        narrow = machine_config("4-wide")
        assert (narrow.fetch_width, narrow.rename_width,
                narrow.retire_width) == (4, 4, 4)
        assert narrow.issue_width == 4
        assert narrow.int_alu_units == 2 and narrow.load_ports == 1
        wide_exec = machine_config("4-wide+6-exec")
        assert wide_exec.fetch_width == 4 and wide_exec.issue_width == 6
        assert wide_exec.int_alu_units == 4 and wide_exec.load_ports == 2
        sched = machine_config("2-cycle-sched")
        assert sched.scheduler_latency == 2
        assert dataclasses.replace(
            sched, scheduler_latency=1, name="baseline-6wide") == baseline_config()

    def test_catalog_listing_covers_the_figures(self):
        names = machine_names()
        assert names[0] == "baseline"
        assert {"int", "int+collapse", "int-mem", "int-mem+collapse"} <= set(names)
        assert {"prf164", "prf144", "prf124", "prf104"} <= set(names)
        assert {"6-wide", "4-wide", "4-wide+6-exec", "2-cycle-sched"} <= set(names)
        assert len(machine_catalog()) == len(names)

    def test_unknown_machine_is_actionable(self):
        with pytest.raises(ConfigError, match="unknown machine"):
            machine_config("9-wide")


class TestValidation:
    def test_cache_rejects_non_positive_dimensions(self):
        with pytest.raises(ConfigError, match="size_bytes"):
            CacheConfig(0, 2, 32, 1)
        with pytest.raises(ConfigError, match="associativity"):
            CacheConfig(1024, -1, 32, 1)

    def test_cache_rejects_non_power_of_two_set_counts(self):
        with pytest.raises(ConfigError, match="not a power of two"):
            CacheConfig(24 * 1024, 2, 32, 1)  # 384 sets

    def test_cache_rejects_ragged_capacity(self):
        with pytest.raises(ConfigError, match="multiple of"):
            CacheConfig(1000, 2, 32, 1)

    def test_machine_rejects_non_positive_widths(self):
        with pytest.raises(ConfigError, match="issue_width"):
            MachineConfig(issue_width=0)
        with pytest.raises(ConfigError, match="rob_size"):
            MachineConfig(rob_size=-1)

    def test_machine_rejects_register_file_underflow(self):
        with pytest.raises(ConfigError, match="physical_registers"):
            MachineConfig(physical_registers=64)

    def test_machine_rejects_pipelines_exceeding_alus(self):
        with pytest.raises(ConfigError, match="alu_pipelines"):
            MachineConfig(alu_pipelines=5)

    def test_machine_rejects_unsustainable_issue_width(self):
        with pytest.raises(ConfigError, match="unit mix"):
            MachineConfig(issue_width=6, int_alu_units=1, fp_units=1,
                          load_ports=1, store_ports=1, alu_pipelines=0)

    def test_every_catalog_entry_is_valid(self):
        for name in machine_names():
            machine_config(name).resolve()  # construction validates


class TestMachineSpec:
    def test_name_does_not_change_the_key(self):
        config = baseline_config()
        renamed = config.with_name("anything-else")
        assert config.resolve() == renamed.resolve()
        assert config.resolve().machine_hash == renamed.resolve().machine_hash

    def test_geometry_changes_the_key(self):
        config = baseline_config()
        assert config.resolve() != machine_config("prf144").resolve()
        assert config.resolve() != machine_config("2-cycle-sched").resolve()

    def test_derived_fields_are_normalized_in(self):
        key = dict(machine_config("int").resolve().key[1:])
        assert key["plain_alu_units"] == 2
        assert key["in_flight_registers"] == 100

    def test_spec_round_trips_pickle(self):
        spec = machine_config("int-mem").resolve()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec and clone.machine_hash == spec.machine_hash

    def test_keys_are_stable_across_processes(self):
        """One worker process must derive the exact same hashes (the grid
        engine's cache keys cross the pool boundary)."""
        names = machine_names()
        local = [machine_config(name).resolve().machine_hash for name in names]
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                remote = pool.submit(_catalog_hashes).result()
        except (OSError, PermissionError):
            pytest.skip("process pools unavailable in this environment")
        assert remote == list(zip(names, local))


def _catalog_hashes():
    """Pool worker: (name, machine_hash) for every catalog machine."""
    return [(name, machine_config(name).resolve().machine_hash)
            for name in machine_names()]
