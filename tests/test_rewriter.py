"""Tests for the binary rewriter."""

import pytest

from repro.isa.instruction import Instruction
from repro.program import Program, RewriteError, RewriteSite, rewrite_program

SOURCE = """
start:
  ldi r1, 10
loop:
  addqi r2,1,r2
  srli r2,3,r3
  andi r3,1,r4
  subqi r1,1,r1
  bne r1,loop
  halt
"""


@pytest.fixture
def program():
    return Program.from_assembly("rewrite-target", SOURCE)


def _site(program, member_labels, anchor_label, mgid=0, inputs=(2,), output=4):
    return RewriteSite(
        anchor_index=anchor_label,
        member_indices=tuple(member_labels),
        mgid=mgid,
        input_regs=tuple(inputs),
        output_reg=output,
    )


def test_padded_rewrite_keeps_layout(program):
    # Collapse srli (index 2) and andi (index 3) around the andi anchor.
    site = _site(program, (2, 3), 3)
    result = rewrite_program(program, [site])
    rewritten = result.program
    assert len(rewritten) == len(program)
    assert rewritten.instructions[2].is_nop
    assert rewritten.instructions[3].is_handle
    assert result.removed_instructions == 1
    assert rewritten.labels == program.labels


def test_handle_records_interface(program):
    site = _site(program, (2, 3), 3, mgid=7, inputs=(2,), output=4)
    result = rewrite_program(program, [site])
    handle = result.program.instructions[3]
    assert handle.mgid == 7
    assert handle.rs1 == 2
    assert handle.rd == 4


def test_handle_pcs_map(program):
    site = _site(program, (2, 3), 3, mgid=9)
    result = rewrite_program(program, [site])
    pc = result.program.pc_of(3)
    assert result.handle_pcs[pc] == 9


def test_compressed_rewrite_shrinks_program(program):
    site = _site(program, (2, 3), 3)
    result = rewrite_program(program, [site], pad_with_nops=False)
    assert len(result.program) == len(program) - 1
    # Branch target still resolves to the loop label after re-layout.
    branch = [insn for insn in result.program if insn.is_branch][0]
    assert branch.imm == result.program.labels["loop"]


def test_overlapping_sites_rejected(program):
    first = _site(program, (2, 3), 3)
    second = _site(program, (3, 4), 4, mgid=1)
    with pytest.raises(RewriteError):
        rewrite_program(program, [first, second])


def test_anchor_must_be_member(program):
    with pytest.raises(RewriteError):
        RewriteSite(anchor_index=5, member_indices=(2, 3), mgid=0,
                    input_regs=(2,), output_reg=4)


def test_too_many_inputs_rejected(program):
    with pytest.raises(RewriteError):
        RewriteSite(anchor_index=3, member_indices=(2, 3), mgid=0,
                    input_regs=(1, 2, 3), output_reg=4)


def test_rewriting_nop_member_rejected(program):
    padded = rewrite_program(program, [_site(program, (2, 3), 3)]).program
    with pytest.raises(RewriteError):
        rewrite_program(padded, [_site(padded, (2, 3), 3)])


def test_rewriting_handle_member_rejected(program):
    padded = rewrite_program(program, [_site(program, (2, 3), 3)]).program
    with pytest.raises(RewriteError):
        rewrite_program(padded, [_site(padded, (3, 4), 4)])


def test_metadata_marks_rewritten(program):
    result = rewrite_program(program, [_site(program, (2, 3), 3)])
    assert result.program.metadata["rewritten"] is True
    assert result.program.metadata["compressed"] is False
