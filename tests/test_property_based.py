"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.isa.encoding import encode_instruction
from repro.isa.instruction import Instruction, make_handle
from repro.minigraph import (
    DEFAULT_POLICY,
    MiniGraphTemplate,
    TemplateInstruction,
    build_mgt_entry,
    external,
    internal,
)
from repro.program import Program
from repro.sim import Memory, run_program
from repro.uarch import BranchTargetBuffer, Cache, HybridBranchPredictor
from repro.uarch.config import CacheConfig

_addresses = st.integers(min_value=0, max_value=1 << 30).map(lambda value: value * 8)
_words = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestMemoryProperties:
    @given(address=_addresses, value=_words)
    def test_store_load_round_trip(self, address, value):
        memory = Memory()
        memory.store_word(address, value)
        assert memory.load_word(address) == value

    @given(address=_addresses, first=_words, second=_words)
    def test_last_store_wins(self, address, first, second):
        memory = Memory()
        memory.store_word(address, first)
        memory.store_word(address, second)
        assert memory.load_word(address) == second

    @given(address=_addresses, value=_words, other=_addresses)
    def test_stores_do_not_alias_distinct_words(self, address, value, other):
        if address == other:
            return
        memory = Memory()
        memory.store_word(address, value)
        assert memory.load_word(other) == 0

    @given(address=_addresses, value=st.integers(min_value=0, max_value=255),
           byte_offset=st.integers(min_value=0, max_value=7))
    def test_byte_store_only_touches_its_byte(self, address, value, byte_offset):
        memory = Memory()
        memory.store_word(address, 0)
        memory.store(address + byte_offset, value, 1)
        loaded = memory.load_word(address)
        assert (loaded >> (byte_offset * 8)) & 0xFF == value
        assert loaded & ~(0xFF << (byte_offset * 8)) == 0


class TestPredictorProperties:
    @given(outcomes=st.lists(st.booleans(), min_size=1, max_size=200))
    def test_predictor_counters_stay_bounded(self, outcomes):
        predictor = HybridBranchPredictor(entries=64)
        for taken in outcomes:
            predicted = predictor.predict(0x40)
            predictor.update(0x40, taken, predicted)
        assert predictor.stats.direction_lookups == len(outcomes)
        assert 0 <= predictor.stats.direction_mispredictions <= len(outcomes)

    @given(pcs=st.lists(st.integers(min_value=0, max_value=1 << 20)
                        .map(lambda value: value * 4), min_size=1, max_size=100))
    def test_btb_most_recent_entry_always_hits(self, pcs):
        btb = BranchTargetBuffer(entries=64, associativity=4)
        for pc in pcs:
            btb.update(pc, pc + 8)
            assert btb.lookup(pc) == pc + 8


class TestCacheProperties:
    @given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                              max_size=300))
    def test_miss_count_never_exceeds_accesses(self, addresses):
        cache = Cache(CacheConfig(1024, 2, 32, 1))
        for address in addresses:
            cache.access(address)
        assert cache.stats.misses <= cache.stats.accesses

    @given(address=st.integers(min_value=0, max_value=1 << 20))
    def test_repeat_access_hits(self, address):
        cache = Cache(CacheConfig(1024, 2, 32, 1))
        cache.access(address)
        assert cache.access(address)


class TestEncodingProperties:
    @given(rd=st.integers(0, 63), rs1=st.integers(0, 63), rs2=st.integers(0, 63))
    def test_alu_encoding_is_word_sized(self, rd, rs1, rs2):
        encoded = encode_instruction(Instruction("addq", rd=rd, rs1=rs1, rs2=rs2))
        assert encoded.size_bytes == 4

    @given(mgid=st.integers(0, 2047), rs1=st.integers(0, 63), rd=st.integers(0, 63))
    def test_handles_always_fit_in_one_word(self, mgid, rs1, rd):
        encoded = encode_instruction(make_handle(rs1, None, rd, mgid))
        assert encoded.size_bytes == 4


class TestTemplateProperties:
    @given(length=st.integers(min_value=2, max_value=8),
           out_position=st.integers(min_value=0, max_value=7))
    def test_serial_chains_are_never_internally_parallel(self, length, out_position):
        instructions = [TemplateInstruction("addli", src0=external(0), imm=1)]
        for position in range(1, length):
            instructions.append(
                TemplateInstruction("addli", src0=internal(position - 1), imm=1))
        template = MiniGraphTemplate(
            instructions=tuple(instructions),
            num_inputs=1,
            out_index=min(out_position, length - 1),
        )
        assert template.is_serial_chain
        entry = build_mgt_entry(0, template)
        # A serial integer chain occupies exactly one bank per instruction and
        # its output latency equals the producing position + 1.
        assert len(entry.banks) == length
        assert entry.header.lat == min(out_position, length - 1) + 1
        assert entry.header.total_latency == length


class TestSelectionProperties:
    @settings(deadline=None, max_examples=10)
    @given(values=st.lists(st.integers(min_value=0, max_value=255), min_size=4,
                           max_size=12))
    def test_rewriting_random_reduction_kernels_preserves_semantics(self, values):
        data = " ".join(str(value) for value in values)
        source = f"""
        .data values {data}
          la r16, values
          ldi r18, {len(values)}
          clr r10
          clr r11
        loop:
          s8addl r10,r16,r8
          ldq r2,0(r8)
          srli r2,2,r3
          xor r3,r2,r3
          andi r3,63,r3
          addq r11,r3,r11
          addqi r10,1,r10
          cmplt r10,r18,r9
          bne r9,loop
          halt
        """
        program = Program.from_assembly("prop-kernel", source)
        baseline = run_program(program, max_instructions=2000)
        from repro.minigraph import MiniGraphTable, select_minigraphs
        from repro.program import rewrite_program
        selection = select_minigraphs(program, baseline.profile, policy=DEFAULT_POLICY)
        mgt = MiniGraphTable.from_selection(selection)
        rewritten = rewrite_program(program, selection.rewrite_sites()).program
        result = run_program(rewritten, mgt=mgt, max_instructions=2000)
        # Memory and the live accumulator must match; dead temporaries are not
        # compared (the rewriting legitimately never materialises them).
        assert result.memory.checksum() == baseline.memory.checksum()
        assert result.register(11) == baseline.register(11)
