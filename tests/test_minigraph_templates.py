"""Tests for mini-graph templates and their structural constraints."""

import pytest

from repro.minigraph import (
    MiniGraphTemplate,
    TemplateError,
    TemplateInstruction,
    external,
    immediate,
    internal,
)


def _chain_template():
    """The paper's Figure 1 left mini-graph: addl / cmplt / bne."""
    return MiniGraphTemplate(
        instructions=(
            TemplateInstruction("addli", src0=external(0), imm=2),
            TemplateInstruction("cmplt", src0=internal(0), src1=external(1)),
            TemplateInstruction("bne", src0=internal(1), imm=0xA),
        ),
        num_inputs=2,
        out_index=0,
    )


def _load_template():
    """The paper's Figure 1 right mini-graph: ldq / srl / and."""
    return MiniGraphTemplate(
        instructions=(
            TemplateInstruction("ldq", src0=external(0), imm=16),
            TemplateInstruction("srli", src0=internal(0), imm=14),
            TemplateInstruction("andi", src0=internal(1), imm=1),
        ),
        num_inputs=1,
        out_index=2,
    )


class TestTemplateProperties:
    def test_chain_template_shape(self):
        template = _chain_template()
        assert template.size == 3
        assert template.is_integer_only
        assert template.has_branch
        assert not template.has_memory
        assert template.is_serial_chain
        assert not template.is_internally_parallel

    def test_chain_template_is_externally_serial(self):
        # cmplt reads E1, an external input to the second instruction.
        assert _chain_template().is_externally_serial

    def test_load_template_shape(self):
        template = _load_template()
        assert template.is_integer_memory
        assert template.has_load
        assert template.load_position == 0
        assert template.has_interior_load
        assert not template.is_externally_serial

    def test_terminal_load_is_not_interior(self):
        template = MiniGraphTemplate(
            instructions=(
                TemplateInstruction("addli", src0=external(0), imm=8),
                TemplateInstruction("ldq", src0=internal(0), imm=0),
            ),
            num_inputs=1,
            out_index=1,
        )
        assert template.has_load
        assert not template.has_interior_load

    def test_internally_parallel_detection(self):
        template = MiniGraphTemplate(
            instructions=(
                TemplateInstruction("addli", src0=external(0), imm=1),
                TemplateInstruction("addli", src0=external(1), imm=2),
                TemplateInstruction("addq", src0=internal(0), src1=internal(1)),
            ),
            num_inputs=2,
            out_index=2,
        )
        assert template.is_internally_parallel
        assert not template.is_serial_chain

    def test_key_is_stable_and_discriminating(self):
        assert _chain_template().key() == _chain_template().key()
        assert _chain_template().key() != _load_template().key()

    def test_describe_mentions_operands(self):
        text = _chain_template().describe()
        assert "E0" in text and "M0" in text and "bne" in text


class TestTemplateValidation:
    def test_single_instruction_rejected(self):
        with pytest.raises(TemplateError):
            MiniGraphTemplate(
                instructions=(TemplateInstruction("addli", src0=external(0), imm=1),),
                num_inputs=1, out_index=0)

    def test_two_memory_ops_rejected(self):
        with pytest.raises(TemplateError):
            MiniGraphTemplate(
                instructions=(
                    TemplateInstruction("ldq", src0=external(0), imm=0),
                    TemplateInstruction("stq", src0=external(1), src1=internal(0), imm=0),
                ),
                num_inputs=2, out_index=None)

    def test_non_terminal_branch_rejected(self):
        with pytest.raises(TemplateError):
            MiniGraphTemplate(
                instructions=(
                    TemplateInstruction("bne", src0=external(0), imm=0),
                    TemplateInstruction("addli", src0=external(1), imm=1),
                ),
                num_inputs=2, out_index=1)

    def test_internal_reference_must_point_backwards(self):
        with pytest.raises(TemplateError):
            MiniGraphTemplate(
                instructions=(
                    TemplateInstruction("addli", src0=internal(1), imm=1),
                    TemplateInstruction("addli", src0=external(0), imm=1),
                ),
                num_inputs=1, out_index=1)

    def test_multiplies_are_not_eligible(self):
        with pytest.raises(TemplateError):
            MiniGraphTemplate(
                instructions=(
                    TemplateInstruction("mull", src0=external(0), src1=external(1)),
                    TemplateInstruction("addli", src0=internal(0), imm=1),
                ),
                num_inputs=2, out_index=1)

    def test_out_index_must_write_a_register(self):
        with pytest.raises(TemplateError):
            MiniGraphTemplate(
                instructions=(
                    TemplateInstruction("addli", src0=external(0), imm=1),
                    TemplateInstruction("bne", src0=internal(0), imm=0),
                ),
                num_inputs=1, out_index=1)

    def test_too_many_inputs_rejected(self):
        with pytest.raises(TemplateError):
            MiniGraphTemplate(
                instructions=(
                    TemplateInstruction("addq", src0=external(0), src1=external(1)),
                    TemplateInstruction("addq", src0=internal(0), src1=external(2)),
                ),
                num_inputs=3, out_index=1)
