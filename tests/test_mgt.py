"""Tests for the mini-graph table (MGHT + MGST) and handle expansion."""

import pytest

from repro.isa.instruction import make_handle
from repro.minigraph import (
    FU_ALU_PIPELINE,
    FU_LOAD,
    MgtBuildOptions,
    MgtError,
    MiniGraphTable,
    MiniGraphTemplate,
    TemplateInstruction,
    build_mgt_entry,
    external,
    internal,
)


def chain_template():
    """Figure 1 left: addl E0,2 ; cmplt M0,E1 ; bne M1 (output from instruction 0)."""
    return MiniGraphTemplate(
        instructions=(
            TemplateInstruction("addli", src0=external(0), imm=2),
            TemplateInstruction("cmplt", src0=internal(0), src1=external(1)),
            TemplateInstruction("bne", src0=internal(1), imm=0xA),
        ),
        num_inputs=2,
        out_index=0,
    )


def load_template():
    """Figure 1 right: ldq 16(E0) ; srl M0,14 ; and M1,1 (output from the last)."""
    return MiniGraphTemplate(
        instructions=(
            TemplateInstruction("ldq", src0=external(0), imm=16),
            TemplateInstruction("srli", src0=internal(0), imm=14),
            TemplateInstruction("andi", src0=internal(1), imm=1),
        ),
        num_inputs=1,
        out_index=2,
    )


class TestMghtContents:
    def test_integer_chain_header_matches_figure2(self):
        entry = build_mgt_entry(12, chain_template())
        # Output produced by the first instruction -> LAT 1; first FU is the
        # ALU pipeline; integer mini-graph -> empty FUBMP resources beyond AP.
        assert entry.header.lat == 1
        assert entry.header.fu0.startswith(FU_ALU_PIPELINE)
        assert entry.header.size == 3
        assert entry.header.total_latency == 3

    def test_load_chain_header_matches_figure2(self):
        entry = build_mgt_entry(34, load_template(), MgtBuildOptions(load_latency=2))
        # Load-first graph: ldq in bank 0, bank 1 empty, srl in bank 2, and in
        # bank 3; output from the last instruction -> LAT 4.
        assert entry.header.fu0 == FU_LOAD
        assert entry.header.lat == 4
        assert entry.header.total_latency == 4
        assert len(entry.banks) == 4
        assert entry.banks[1] is None

    def test_fubmp_lists_units_after_the_first(self):
        entry = build_mgt_entry(34, load_template())
        # Cycles 1..3 after issue: empty, then two ALU-pipeline stages.
        assert entry.header.fubmp[0] is None
        assert entry.header.fubmp[1] is not None
        assert entry.header.fubmp[2] is not None

    def test_collapsing_reduces_bank_count(self):
        plain = build_mgt_entry(0, chain_template(), MgtBuildOptions(collapsing=False))
        collapsed = build_mgt_entry(0, chain_template(), MgtBuildOptions(collapsing=True))
        assert len(collapsed.banks) < len(plain.banks)
        assert collapsed.header.total_latency < plain.header.total_latency


class TestMiniGraphTable:
    def test_add_and_lookup(self):
        table = MiniGraphTable()
        table.add(12, chain_template())
        table.add(34, load_template())
        assert 12 in table and 34 in table
        assert len(table) == 2
        assert table.header(12).size == 3
        assert table.lookup(34).template.has_load

    def test_duplicate_mgid_rejected(self):
        table = MiniGraphTable()
        table.add(1, chain_template())
        with pytest.raises(MgtError):
            table.add(1, load_template())

    def test_unknown_mgid_rejected(self):
        with pytest.raises(MgtError):
            MiniGraphTable().lookup(99)

    def test_from_templates_assigns_dense_ids(self):
        table = MiniGraphTable.from_templates([chain_template(), load_template()])
        assert table.mgids() == [0, 1]

    def test_format_logical_mentions_operand_names(self):
        table = MiniGraphTable.from_templates([chain_template()])
        text = table.format_logical(0)
        assert "E0" in text and "M0" in text and "OUT=0" in text

    def test_format_physical_mentions_banks(self):
        table = MiniGraphTable.from_templates([load_template()])
        text = table.format_physical(0)
        assert "MGST.0" in text and "empty" in text
        assert "LAT=4" in text

    def test_describe_covers_all_entries(self):
        table = MiniGraphTable.from_templates([chain_template(), load_template()])
        assert len(table.describe().splitlines()) == 2


class TestHandleExpansion:
    def test_expansion_reproduces_constituents(self):
        table = MiniGraphTable.from_templates([load_template()])
        handle = make_handle(4, None, 17, 0)
        expansion = table.expand_handle(handle)
        assert [insn.op for insn in expansion] == ["ldq", "srli", "andi"]
        # The load reads the handle's first interface register, the final and
        # writes the handle's destination.
        assert expansion[0].rs1 == 4
        assert expansion[-1].rd == 17

    def test_expansion_requires_handle(self):
        table = MiniGraphTable.from_templates([chain_template()])
        from repro.isa.instruction import Instruction
        with pytest.raises(MgtError):
            table.expand_handle(Instruction("addl", rd=1, rs1=1, rs2=2))

    def test_expansion_interior_values_use_scratch_registers(self):
        table = MiniGraphTable.from_templates([load_template()])
        expansion = table.expand_handle(make_handle(4, None, 17, 0))
        interior_dests = {insn.rd for insn in expansion[:-1]}
        assert 17 not in interior_dests
