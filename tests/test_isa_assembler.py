"""Tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.registers import ZERO_REG


def test_simple_program_assembles():
    unit = assemble("""
    start:
      ldi r1, 5
      addqi r1,1,r2
      halt
    """)
    assert len(unit.instructions) == 3
    assert unit.labels["start"] == 0
    assert unit.instructions[0].op == "lda"
    assert unit.instructions[1].op == "addqi"


def test_comments_and_blank_lines_are_ignored():
    unit = assemble("""
    # a comment
      nop   ; trailing comment

      halt
    """)
    assert [insn.op for insn in unit.instructions] == ["nop", "halt"]


def test_memory_operands():
    unit = assemble("""
      ldq r2,16(r4)
      stq r2,8(r4)
      halt
    """)
    load, store, _ = unit.instructions
    assert load.rd == 2 and load.rs1 == 4 and load.imm == 16
    assert store.rs2 == 2 and store.rs1 == 4 and store.imm == 8


def test_branch_targets_are_validated():
    with pytest.raises(AssemblerError):
        assemble("bne r1, nowhere\nhalt\n")


def test_branch_to_known_label():
    unit = assemble("""
    loop:
      subqi r1,1,r1
      bne r1,loop
      halt
    """)
    branch = unit.instructions[1]
    assert branch.target == "loop"


def test_data_directive_allocates_words():
    unit = assemble("""
    .data table 1 2 3
      la r1, table
      halt
    """)
    base = unit.data_labels["table"]
    assert unit.data[base] == 1
    assert unit.data[base + 8] == 2
    assert unit.data[base + 16] == 3
    assert unit.instructions[0].imm == base


def test_space_directive():
    unit = assemble("""
    .space buffer 4
      halt
    """)
    base = unit.data_labels["buffer"]
    assert all(unit.data[base + 8 * i] == 0 for i in range(4))


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("a:\n nop\na:\n halt\n")


def test_unknown_opcode_rejected():
    with pytest.raises(AssemblerError):
        assemble("frobnicate r1,r2,r3\nhalt\n")


def test_unknown_data_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("la r1, nowhere\nhalt\n")


def test_pseudo_ops():
    unit = assemble("""
      mov r2, r3
      clr r4
      ldi r5, 1234
      halt
    """)
    mov, clr, ldi, _ = unit.instructions
    assert mov.op == "bis" and mov.rs1 == 3 and mov.rs2 == ZERO_REG and mov.rd == 2
    assert clr.op == "bis" and clr.rs1 == ZERO_REG
    assert ldi.op == "lda" and ldi.imm == 1234


def test_handle_syntax():
    unit = assemble("mg r18,r5,r18,12\nhalt\n")
    handle = unit.instructions[0]
    assert handle.is_handle
    assert handle.mgid == 12


def test_handle_with_dash_operands():
    unit = assemble("mg r4,-,r17,34\nhalt\n")
    handle = unit.instructions[0]
    assert handle.rs2 == ZERO_REG


def test_malformed_operand_count_reports_line():
    with pytest.raises(AssemblerError) as excinfo:
        assemble("addl r1,r2\nhalt\n")
    assert "addl" in str(excinfo.value)


def test_label_pc_helper():
    unit = assemble("first:\n nop\nsecond:\n halt\n")
    assert unit.label_pc("second") - unit.label_pc("first") == 4
