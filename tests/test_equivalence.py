"""End-to-end equivalence: rewritten programs compute exactly what the
originals compute, for every benchmark and every selection policy family.

This is the core correctness property of the whole system: collapsing
mini-graphs into handles must not change architectural semantics.
"""

import pytest

from repro.minigraph import (
    DEFAULT_POLICY,
    INTEGER_POLICY,
    NON_SERIAL_NON_REPLAY_POLICY,
    MiniGraphTable,
    select_minigraphs,
)
from repro.program import rewrite_program
from repro.sim import run_program
from repro.workloads import REGISTRY, load_benchmark

#: A representative subset spanning all four suites (full sweeps live in the
#: benchmark harness; the test suite keeps runtime moderate).
EQUIVALENCE_BENCHMARKS = (
    "gcc", "mcf", "crafty", "gzip",
    "adpcm.encode", "gsm.toast", "jpeg.compress", "mpeg2.decode",
    "frag", "rtr", "reed.encode",
    "bitcount", "sha", "crc", "susan.smoothing", "dijkstra",
)

# Large enough that every kernel runs to its halt instruction; comparing runs
# that were cut off mid-loop would make the final register state depend on
# where exactly the budget boundary fell.
BUDGET = 120_000


def _equivalence_case(benchmark: str, policy) -> None:
    program = load_benchmark(benchmark)
    baseline = run_program(program, max_instructions=BUDGET)
    assert baseline.halted, f"{benchmark} must reach halt for the equivalence check"
    selection = select_minigraphs(program, baseline.profile, policy=policy)
    mgt = MiniGraphTable.from_selection(selection)
    rewritten = rewrite_program(program, selection.rewrite_sites()).program
    result = run_program(rewritten, mgt=mgt, max_instructions=BUDGET)
    # Memory state is the architectural output of every kernel (results are
    # stored to output arrays).  Final *register* state is deliberately not
    # compared wholesale: interior values that liveness proves dead at program
    # exit are never materialised by the rewritten program, exactly as the
    # paper's transient-value optimisation intends.
    assert result.memory.checksum() == baseline.memory.checksum(), (
        f"{benchmark}: rewritten program diverged from the original")
    assert result.instructions_executed == baseline.instructions_executed
    assert result.halted
    # Handles really do absorb work: slots committed must not exceed original.
    assert result.entries_committed <= baseline.entries_committed


@pytest.mark.parametrize("benchmark_name", EQUIVALENCE_BENCHMARKS)
def test_integer_memory_rewriting_preserves_semantics(benchmark_name):
    _equivalence_case(benchmark_name, DEFAULT_POLICY)


@pytest.mark.parametrize("benchmark_name", EQUIVALENCE_BENCHMARKS[:8])
def test_integer_only_rewriting_preserves_semantics(benchmark_name):
    _equivalence_case(benchmark_name, INTEGER_POLICY)


@pytest.mark.parametrize("benchmark_name", EQUIVALENCE_BENCHMARKS[:6])
def test_restricted_policy_rewriting_preserves_semantics(benchmark_name):
    _equivalence_case(benchmark_name, NON_SERIAL_NON_REPLAY_POLICY)


def test_every_registered_benchmark_assembles_and_runs():
    for name in REGISTRY.names():
        program = load_benchmark(name)
        result = run_program(program, max_instructions=3_000)
        assert result.instructions_executed > 500, name


def test_rewritten_trace_coverage_matches_selection_estimate():
    program = load_benchmark("gsm.toast")
    baseline = run_program(program, max_instructions=BUDGET)
    selection = select_minigraphs(program, baseline.profile, policy=DEFAULT_POLICY)
    mgt = MiniGraphTable.from_selection(selection)
    rewritten = rewrite_program(program, selection.rewrite_sites()).program
    result = run_program(rewritten, mgt=mgt, max_instructions=BUDGET)
    assert result.trace.dynamic_coverage() == pytest.approx(selection.coverage, abs=0.02)
