"""Reconstruction of the paper's worked example (Figures 1-3).

The gcc snippets of Figure 1 are assembled, the extractor must discover the
two shaded mini-graphs, the MGT built from them must match the logical
contents of Figure 1c / physical contents of Figure 2, and the handle life
cycle through the pipeline must show the bandwidth amplification of Figure 3
(one slot per stage instead of three).
"""

import pytest

from repro.minigraph import (
    DEFAULT_POLICY,
    MiniGraphTable,
    enumerate_minigraphs,
    select_minigraphs,
)
from repro.program import Program, rewrite_program
from repro.sim import run_program
from repro.uarch import baseline_config, integer_memory_minigraph_config, simulate_program

#: Figure 1a, left snippet: the counter/compare/branch idiom plus surrounding
#: code (the shaded instructions are addl, cmplt, bne).  In the paper's
#: context r18 is the interface output (OUT = 0) and r7 is dead after the
#: branch; the code around the idiom here is arranged to give the same
#: liveness so the extracted graph matches Figure 1c.
LEFT_SNIPPET = """
start:
  ldi r5, 40
  ldi r16, 1048576
  clr r0
  ldl r18,24(r16)
loop:
  addqi r18,2,r18
  lda r6,2,r6
  s8addl r6,r0,r22
  cmplt r18,r5,r7
  bne r7,loop
  stq r18,32(r16)
  halt
"""

#: Figure 1a, right snippet: the load/shift/mask idiom (ldq, srl, and).
RIGHT_SNIPPET = """
start:
  ldi r4, 1048576
  clr r10
loop:
  ldq r2,16(r4)
  srli r2,14,r17
  andi r17,1,r17
  bis r18,zero,r16
  addq r10,r17,r10
  addqi r4,8,r4
  cmplti r4,1049176,r9
  bne r9,loop
  halt
"""


def _select(program, budget=4000):
    profile = run_program(program, max_instructions=budget).profile
    return select_minigraphs(program, profile, policy=DEFAULT_POLICY)


class TestFigure1Extraction:
    def test_left_snippet_yields_compare_branch_graph(self):
        program = Program.from_assembly("gcc-left", LEFT_SNIPPET)
        candidates = enumerate_minigraphs(program)
        chains = [c for c in candidates
                  if [t.op for t in c.template.instructions] == ["addqi", "cmplt", "bne"]]
        assert chains, "the addl/cmplt/bne idiom of Figure 1 must be enumerable"
        graph = chains[0]
        # Interface: inputs r18 and r5, output r18 produced by the first
        # instruction (OUT = 0 in Figure 1c).
        assert set(graph.input_regs) == {18, 5}
        assert graph.output_reg == 18
        assert graph.template.out_index == 0
        # The anchor is the branch.
        assert program.instructions[graph.anchor_index].is_branch

    def test_right_snippet_yields_load_shift_mask_graph(self):
        program = Program.from_assembly("gcc-right", RIGHT_SNIPPET)
        candidates = enumerate_minigraphs(program)
        chains = [c for c in candidates
                  if [t.op for t in c.template.instructions] == ["ldq", "srli", "andi"]]
        assert chains, "the ldq/srl/and idiom of Figure 1 must be enumerable"
        graph = chains[0]
        assert graph.input_regs == (4,)
        assert graph.output_reg == 17
        assert graph.template.out_index == 2
        # The anchor is the memory operation.
        assert program.instructions[graph.anchor_index].is_load


class TestFigure2MgtContents:
    def test_mght_rows_match_figure2(self):
        left = Program.from_assembly("gcc-left", LEFT_SNIPPET)
        right = Program.from_assembly("gcc-right", RIGHT_SNIPPET)
        left_graph = [c for c in enumerate_minigraphs(left)
                      if [t.op for t in c.template.instructions] == ["addqi", "cmplt", "bne"]][0]
        right_graph = [c for c in enumerate_minigraphs(right)
                       if [t.op for t in c.template.instructions] == ["ldq", "srli", "andi"]][0]
        mgt = MiniGraphTable.from_templates([left_graph.template, right_graph.template])
        integer_header = mgt.header(0)
        memory_header = mgt.header(1)
        # Figure 2: MGID 12 has LAT 1 (output from the first instruction) and
        # executes on the ALU pipeline; MGID 34 has LAT 4 and starts on the
        # load port with an empty second bank.
        assert integer_header.lat == 1
        assert integer_header.fu0.startswith("AP")
        assert memory_header.lat == 4
        assert memory_header.fu0 == "LD"
        assert mgt.banks(1)[1] is None

    def test_logical_format_mentions_interface_names(self):
        program = Program.from_assembly("gcc-right", RIGHT_SNIPPET)
        graph = [c for c in enumerate_minigraphs(program)
                 if c.template.has_load and c.template.size == 3][0]
        mgt = MiniGraphTable.from_templates([graph.template])
        text = mgt.format_logical(0)
        assert "ldq" in text and "E0" in text and "M1" in text


class TestFigure3LifeCycle:
    def test_handle_consumes_one_slot_per_stage(self):
        program = Program.from_assembly("gcc-left", LEFT_SNIPPET)
        baseline_run = run_program(program, max_instructions=4000)
        selection = _select(program)
        assert selection.template_count >= 1
        mgt = MiniGraphTable.from_selection(selection)
        rewritten = rewrite_program(program, selection.rewrite_sites()).program
        rewritten_run = run_program(rewritten, mgt=mgt, max_instructions=4000)

        baseline_stats = simulate_program(program, baseline_run.trace, baseline_config())
        minigraph_stats = simulate_program(rewritten, rewritten_run.trace,
                                           integer_memory_minigraph_config(), mgt=mgt)
        # Same architectural work...
        assert minigraph_stats.committed_instructions == baseline_stats.committed_instructions
        # ...but fewer pipeline slots: the handle is fetched/renamed/retired once.
        assert minigraph_stats.committed_slots < baseline_stats.committed_slots
        assert minigraph_stats.committed_handles > 0
        # And fewer fetch slots consumed overall.
        assert minigraph_stats.fetched_slots < baseline_stats.fetched_slots
