"""Tests for the opcode table."""

import pytest

from repro.isa.opcodes import (
    OpClass,
    UnknownOpcodeError,
    all_opcodes,
    has_opcode,
    opcode,
    opcodes_in_class,
    IMM_TO_REG_FORM,
    REG_TO_IMM_FORM,
)


def test_lookup_known_opcode():
    spec = opcode("addl")
    assert spec.name == "addl"
    assert spec.op_class is OpClass.ALU
    assert spec.latency == 1
    assert spec.writes_rd


def test_lookup_unknown_opcode_raises():
    with pytest.raises(UnknownOpcodeError):
        opcode("not-an-opcode")


def test_has_opcode():
    assert has_opcode("ldq")
    assert not has_opcode("vaporware")


def test_load_classification():
    spec = opcode("ldq")
    assert spec.is_load
    assert spec.is_memory
    assert not spec.is_store
    assert spec.minigraph_eligible


def test_store_classification():
    spec = opcode("stq")
    assert spec.is_store
    assert spec.is_memory
    assert not spec.writes_rd
    assert spec.minigraph_eligible


def test_branch_classification():
    spec = opcode("bne")
    assert spec.is_branch
    assert spec.is_control
    assert not spec.writes_rd
    assert spec.minigraph_eligible


def test_unconditional_jump_is_control_but_not_branch():
    spec = opcode("br")
    assert spec.is_control
    assert not spec.is_branch


def test_call_and_indirect_are_not_minigraph_eligible():
    assert not opcode("jsr").minigraph_eligible
    assert not opcode("ret").minigraph_eligible
    assert not opcode("jmp").minigraph_eligible


def test_multiply_is_multicycle_and_not_eligible():
    spec = opcode("mull")
    assert spec.latency > 1
    assert not spec.minigraph_eligible
    assert not spec.is_single_cycle_int


def test_fp_ops_are_fp_class():
    assert opcode("addt").is_fp
    assert opcode("mult").is_fp
    assert opcode("divt").is_fp
    assert not opcode("addl").is_fp


def test_handle_opcode():
    spec = opcode("mg")
    assert spec.op_class is OpClass.MG
    assert spec.has_imm


def test_all_alu_ops_single_cycle():
    for spec in opcodes_in_class(OpClass.ALU):
        assert spec.latency == 1, spec.name
        assert spec.minigraph_eligible


def test_immediate_forms_have_imm_flag():
    for imm_name, reg_name in IMM_TO_REG_FORM.items():
        assert opcode(imm_name).has_imm, imm_name
        assert has_opcode(reg_name)


def test_reg_imm_mapping_is_inverse():
    for reg_name, imm_name in REG_TO_IMM_FORM.items():
        assert IMM_TO_REG_FORM[imm_name] == reg_name


def test_opcode_table_is_copied():
    table = all_opcodes()
    table["fake"] = None
    assert not has_opcode("fake")


def test_branches_read_only_one_register():
    for name in ("beq", "bne", "blt", "bge", "bgt", "ble"):
        spec = opcode(name)
        assert spec.reads_rs1
        assert not spec.reads_rs2


def test_loads_read_base_register_only():
    spec = opcode("ldq")
    assert spec.reads_rs1
    assert not spec.reads_rs2
    assert spec.has_imm


def test_stores_read_base_and_value():
    spec = opcode("stq")
    assert spec.reads_rs1
    assert spec.reads_rs2
