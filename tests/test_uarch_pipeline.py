"""End-to-end tests of the cycle-level timing model."""

import pytest

from repro import prepare_minigraph_run
from repro.minigraph import DEFAULT_POLICY, INTEGER_POLICY
from repro.program import Program
from repro.sim import run_program
from repro.uarch import (
    TimingSimulator,
    baseline_config,
    integer_memory_minigraph_config,
    integer_minigraph_config,
    simulate_program,
)
from repro.workloads import load_benchmark

BUDGET = 6_000


def _baseline_stats(source_or_program, config=None, budget=BUDGET):
    program = (source_or_program if isinstance(source_or_program, Program)
               else Program.from_assembly("timing", source_or_program))
    functional = run_program(program, max_instructions=budget)
    return simulate_program(program, functional.trace, config or baseline_config())


SERIAL_CHAIN = """
  clr r1
  ldi r2, 1000
loop:
  addqi r1,1,r1
  cmplt r1,r2,r3
  bne r3,loop
  halt
"""

INDEPENDENT_OPS = """
  clr r1
  ldi r2, 500
loop:
  addqi r3,1,r3
  addqi r4,1,r4
  addqi r5,1,r5
  addqi r6,1,r6
  addqi r1,1,r1
  cmplt r1,r2,r7
  bne r7,loop
  halt
"""


class TestBaselinePipeline:
    def test_all_work_retires(self):
        stats = _baseline_stats(SERIAL_CHAIN)
        assert stats.committed_instructions == BUDGET or stats.committed_instructions > 2900

    def test_ipc_bounded_by_machine_width(self):
        stats = _baseline_stats(INDEPENDENT_OPS)
        assert 0.0 < stats.ipc <= baseline_config().fetch_width

    def test_dependent_chain_is_slower_than_independent_ops(self):
        serial = _baseline_stats(SERIAL_CHAIN)
        parallel = _baseline_stats(INDEPENDENT_OPS)
        assert parallel.ipc > serial.ipc

    def test_two_cycle_scheduler_hurts_dependent_code(self):
        fast = _baseline_stats(SERIAL_CHAIN)
        slow = _baseline_stats(SERIAL_CHAIN, baseline_config().with_scheduler_latency(2))
        assert slow.ipc < fast.ipc

    def test_narrow_machine_hurts_parallel_code(self):
        wide = _baseline_stats(INDEPENDENT_OPS)
        narrow = _baseline_stats(INDEPENDENT_OPS,
                                 baseline_config().with_width(2, execute_width=2,
                                                              load_ports=1))
        assert narrow.ipc < wide.ipc

    def test_branch_mispredictions_are_counted(self):
        # Data-dependent branch pattern the predictor cannot fully learn.
        source = """
        .data noise 13 7 22 5 91 3 64 17 38 2 55 29 8 71 44 19
          la r16, noise
          ldi r18, 16
          clr r10
          clr r11
        loop:
          s8addl r10,r16,r8
          ldq r2,0(r8)
          andi r2,1,r3
          beq r3,even
          addqi r11,1,r11
        even:
          addqi r10,1,r10
          andi r10,15,r10
          addqi r12,1,r12
          cmplti r12,600,r9
          bne r9,loop
          halt
        """
        stats = _baseline_stats(source)
        assert stats.branch_lookups > 0
        assert stats.branch_mispredictions > 0
        assert stats.branch_misprediction_rate < 0.6

    def test_cache_misses_slow_execution(self):
        # Strided accesses over a footprint larger than the 32KB L1.
        source = """
        .space big 8192
          la r16, big
          clr r10
          ldi r18, 2000
        loop:
          andi r10,4095,r2
          s8addl r2,r16,r8
          ldq r3,0(r8)
          addq r11,r3,r11
          addqi r10,67,r10
          addqi r12,1,r12
          cmplt r12,r18,r9
          bne r9,loop
          halt
        """
        stats = _baseline_stats(source, budget=12_000)
        assert stats.dcache_misses > 0
        small_footprint = _baseline_stats(SERIAL_CHAIN)
        assert stats.ipc < small_footprint.ipc * 2

    def test_register_file_pressure(self):
        full = _baseline_stats(INDEPENDENT_OPS)
        tiny = _baseline_stats(INDEPENDENT_OPS, baseline_config().with_physical_registers(72))
        assert tiny.ipc <= full.ipc
        assert tiny.stall_no_physical_register > 0


class TestMiniGraphPipeline:
    def test_handles_retire_and_amplify_bandwidth(self):
        run = prepare_minigraph_run(load_benchmark("gsm.toast"), budget=BUDGET)
        stats = run.minigraph_stats(integer_memory_minigraph_config())
        assert stats.committed_handles > 0
        assert stats.dynamic_coverage > 0.1
        assert stats.committed_instructions > stats.committed_slots

    def test_minigraphs_speed_up_bandwidth_bound_code(self):
        run = prepare_minigraph_run(load_benchmark("adpcm.encode"),
                                    policy=INTEGER_POLICY, budget=BUDGET)
        baseline = run.baseline_stats()
        minigraph = run.minigraph_stats(integer_minigraph_config())
        assert minigraph.ipc > baseline.ipc

    def test_same_committed_work_as_baseline(self):
        run = prepare_minigraph_run(load_benchmark("frag"), budget=BUDGET)
        baseline = run.baseline_stats()
        minigraph = run.minigraph_stats(integer_memory_minigraph_config())
        assert minigraph.committed_instructions == baseline.committed_instructions

    def test_collapsing_is_at_least_as_fast(self):
        from repro.minigraph import MgtBuildOptions
        program = load_benchmark("bitcount")
        plain = prepare_minigraph_run(program, policy=INTEGER_POLICY, budget=BUDGET)
        collapsed = prepare_minigraph_run(program, policy=INTEGER_POLICY, budget=BUDGET,
                                          mgt_options=MgtBuildOptions(collapsing=True))
        plain_ipc = plain.minigraph_stats(integer_minigraph_config()).ipc
        collapsed_ipc = collapsed.minigraph_stats(
            integer_minigraph_config(collapsing=True)).ipc
        assert collapsed_ipc >= plain_ipc * 0.98

    def test_integer_memory_handles_require_sliding_window(self):
        run = prepare_minigraph_run(load_benchmark("rtr"), budget=BUDGET)
        with pytest.raises(Exception):
            run.minigraph_stats(integer_minigraph_config())  # no sliding window

    def test_minigraphs_help_reduced_register_file(self):
        run = prepare_minigraph_run(load_benchmark("frag"), budget=BUDGET)
        reduced = baseline_config().with_physical_registers(124)
        baseline_reduced = simulate_program(run.original, run.baseline_result.trace, reduced)
        minigraph_reduced = simulate_program(
            run.rewritten, run.rewritten_result.trace,
            reduced.with_minigraph_alu_pipelines(2).with_sliding_window(), mgt=run.mgt)
        assert minigraph_reduced.ipc > baseline_reduced.ipc

    def test_minigraphs_tolerate_two_cycle_scheduler(self):
        run = prepare_minigraph_run(load_benchmark("bitcount"), budget=BUDGET)
        base = baseline_config()
        slow = base.with_scheduler_latency(2)
        baseline_slow = simulate_program(run.original, run.baseline_result.trace, slow)
        minigraph_slow = simulate_program(
            run.rewritten, run.rewritten_result.trace,
            slow.with_minigraph_alu_pipelines(2).with_sliding_window(), mgt=run.mgt)
        assert minigraph_slow.ipc > baseline_slow.ipc

    def test_interior_load_misses_cause_replays(self):
        run = prepare_minigraph_run(load_benchmark("mcf"), budget=10_000)
        stats = run.minigraph_stats(integer_memory_minigraph_config())
        assert stats.minigraph_replays > 0

    def test_compressed_layout_reduces_icache_pressure(self):
        run = prepare_minigraph_run(load_benchmark("gcc"), budget=BUDGET)
        config = integer_memory_minigraph_config()
        padded = simulate_program(run.rewritten, run.rewritten_result.trace, config,
                                  mgt=run.mgt, compressed_layout=False)
        compressed = simulate_program(run.rewritten, run.rewritten_result.trace, config,
                                      mgt=run.mgt, compressed_layout=True)
        assert compressed.icache_misses <= padded.icache_misses

    def test_stats_dictionary_is_complete(self):
        stats = _baseline_stats(SERIAL_CHAIN)
        table = stats.as_dict()
        assert table["cycles"] > 0
        assert "ipc" in table and "dynamic_coverage" in table


class TestDynInstFromStatic:
    def test_standalone_construction_classifies_like_the_pipeline(self):
        from repro.isa.instruction import Instruction
        from repro.sim.trace import TraceEntry
        from repro.uarch import DynInst
        static = Instruction("ldq", rd=2, rs1=4, imm=16)
        entry = TraceEntry(pc=0x1010, index=4, size=1, next_pc=0x1014,
                           is_load=True, effective_address=0x2000)
        inst = DynInst.from_static(7, entry, static, index=4)
        assert inst.is_load and inst.is_memory and not inst.is_store
        assert not inst.is_handle and inst.needs_destination
        assert inst.decoded.index == 4
        assert inst.static is static and inst.mgt_entry is None
        assert inst.pc == 0x1010 and inst.effective_address == 0x2000
        assert not inst.issued and not inst.completed


class TestEventDrivenScheduler:
    """Regression tests for the wakeup/select event queue."""

    @staticmethod
    def _timeline(program, config, *, mgt=None, budget=BUDGET):
        functional = run_program(program, max_instructions=budget,
                                 mgt=mgt)
        simulator = TimingSimulator(program, functional.trace, config,
                                    mgt=mgt, record_timeline=True)
        simulator.run()
        return simulator.timeline

    @staticmethod
    def _assert_no_early_wakeups(timeline):
        """No consumer may issue before its producer's broadcast cycle."""
        producers = {}  # physical register -> most recent writer
        checked = 0
        for inst in timeline:
            assert inst.issue_cycle > inst.rename_cycle
            assert inst.complete_cycle > inst.issue_cycle
            for physical in inst.source_physical:
                if physical is None:
                    continue
                producer = producers.get(physical)
                if producer is None:
                    continue  # architectural initial value, ready at cycle 0
                assert inst.issue_cycle >= producer.output_ready_cycle, (
                    f"consumer {inst.describe()} woke before producer "
                    f"{producer.describe()} broadcast at "
                    f"{producer.output_ready_cycle}")
                checked += 1
            if inst.destination_physical is not None:
                producers[inst.destination_physical] = inst
        assert checked > 0, "timeline exercised no register dependences"

    def test_no_consumer_wakes_before_producer_broadcast(self):
        program = load_benchmark("bitcount")
        self._assert_no_early_wakeups(
            self._timeline(program, baseline_config()))

    def test_no_early_wakeups_with_handles(self):
        run = prepare_minigraph_run(load_benchmark("gsm.toast"), budget=BUDGET)
        functional = run_program(run.rewritten, mgt=run.mgt,
                                 max_instructions=BUDGET)
        simulator = TimingSimulator(run.rewritten, functional.trace,
                                    integer_memory_minigraph_config(),
                                    mgt=run.mgt, record_timeline=True)
        stats = simulator.run()
        assert stats.committed_handles > 0
        self._assert_no_early_wakeups(simulator.timeline)
