"""Tests for the unified pipeline API (repro.api): spec hashing, the
content-addressed artifact store, session stage caching, parallel fan-out
and the ``python -m repro`` CLI."""

import json
import math
import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro import MiniGraphRun, prepare_minigraph_run
from repro.api import (
    ArtifactStore,
    RunSpec,
    Session,
    SpecError,
    canonical_key,
    content_hash,
)
from repro.api.store import MISS
from repro.experiments import ExperimentRunner, run_figure6
from repro.minigraph import DEFAULT_POLICY, INTEGER_POLICY, MgtBuildOptions
from repro.program import Program
from repro.uarch import PipelineStats, baseline_config
from repro.workloads import load_benchmark

BUDGET = 2_000


# -- keys -------------------------------------------------------------------------


class TestKeys:
    def test_canonical_key_covers_every_dataclass_field(self):
        import dataclasses
        key = canonical_key(DEFAULT_POLICY)
        named = {entry[0] for entry in key[1:]}
        assert named == {f.name for f in dataclasses.fields(DEFAULT_POLICY)}

    def test_policy_variants_key_differently(self):
        assert canonical_key(DEFAULT_POLICY) != canonical_key(INTEGER_POLICY)
        assert content_hash(DEFAULT_POLICY) != content_hash(INTEGER_POLICY)

    def test_content_hash_is_stable(self):
        assert content_hash(DEFAULT_POLICY) == content_hash(DEFAULT_POLICY)

    def test_runner_policy_key_tracks_fields(self):
        # The legacy hand-maintained tuple silently aliased entries when
        # SelectionPolicy grew a field; the derived key cannot.
        from repro.experiments.runner import _policy_key
        assert _policy_key(DEFAULT_POLICY) != _policy_key(
            DEFAULT_POLICY.with_mgt_entries(16))
        assert _policy_key(DEFAULT_POLICY) == _policy_key(DEFAULT_POLICY)


# -- specs ------------------------------------------------------------------------


class TestRunSpec:
    def test_requires_a_source(self):
        with pytest.raises(SpecError):
            RunSpec()
        with pytest.raises(SpecError):
            RunSpec(benchmark="gsm.toast", budget=0)

    def test_rejects_benchmark_and_program_together(self):
        # Allowing both would cache the ad-hoc program's artifacts under the
        # registered benchmark's keys, poisoning the shared store.
        program = load_benchmark("bitcount")
        with pytest.raises(SpecError):
            RunSpec(benchmark="gcc", program=program)

    def test_spec_hash_is_content_addressed(self):
        first = RunSpec(benchmark="gsm.toast", budget=BUDGET)
        second = RunSpec(benchmark="gsm.toast", budget=BUDGET)
        assert first.spec_hash == second.spec_hash
        assert first.with_budget(BUDGET + 1).spec_hash != first.spec_hash
        assert first.with_policy(INTEGER_POLICY).spec_hash != first.spec_hash

    def test_policies_share_upstream_stage_material(self):
        memory = RunSpec(benchmark="gsm.toast", budget=BUDGET)
        integer = memory.with_policy(INTEGER_POLICY)
        for stage in ("assemble", "profile"):
            assert memory.stage_material(stage) == integer.stage_material(stage)
        assert memory.stage_material("select") != integer.stage_material("select")

    def test_ad_hoc_programs_are_content_addressed(self):
        source = "start:\n  ldi r1, 3\n  addqi r1,1,r1\n  halt\n"
        first = RunSpec.for_program(Program.from_assembly("adhoc", source))
        second = RunSpec.for_program(Program.from_assembly("adhoc", source))
        assert first.source_id == second.source_id
        assert first.source_id.startswith("adhoc-")

    def test_equality_sees_the_ad_hoc_program(self):
        # Specs are dictionary keys; two different programs must not collide.
        first = RunSpec.for_program(load_benchmark("gcc"))
        second = RunSpec.for_program(load_benchmark("mcf"))
        assert first != second
        assert len({first: "a", second: "b"}) == 2
        twin = RunSpec.for_program(load_benchmark("gcc"))
        assert first == twin and hash(first) == hash(twin)

    def test_describe_is_json_serializable(self):
        spec = RunSpec(benchmark="gsm.toast", budget=BUDGET)
        assert json.loads(json.dumps(spec.describe()))["benchmark"] == "gsm.toast"


# -- the artifact store -----------------------------------------------------------


class TestArtifactStore:
    def test_memory_hit_and_miss_accounting(self):
        store = ArtifactStore()
        assert store.get("missing") is MISS
        store.put("key", 42)
        assert store.get("key") == 42
        assert store.stats.misses == 1
        assert store.stats.memory_hits == 1
        assert store.stats.puts == 1

    def test_disk_round_trip(self, tmp_path):
        first = ArtifactStore(tmp_path)
        first.put("key", {"value": [1, 2, 3]})
        second = ArtifactStore(tmp_path)
        assert second.get("key") == {"value": [1, 2, 3]}
        assert second.stats.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("key", 1)
        (tmp_path / "key.pkl").write_bytes(b"not a pickle")
        fresh = ArtifactStore(tmp_path)
        assert fresh.get("key") is MISS
        assert not (tmp_path / "key.pkl").exists()

    def test_clear_and_info(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("a", 1)
        store.put("b", 2)
        info = store.info()
        assert info.disk_entries == 2 and info.memory_entries == 2
        assert info.disk_bytes > 0
        assert store.clear() == 2
        assert store.info().disk_entries == 0


# -- session caching --------------------------------------------------------------


class TestSessionCaching:
    def test_repeated_run_performs_no_new_work(self):
        session = Session()
        spec = RunSpec(benchmark="bitcount", budget=BUDGET)
        session.run(spec)
        work = session.stats.as_dict()
        misses = session.cache_stats.misses
        session.run(spec)
        assert session.stats.as_dict() == work
        assert session.cache_stats.misses == misses
        assert session.cache_stats.hits > 0

    def test_policies_share_profile_artifacts(self):
        session = Session()
        spec = RunSpec(benchmark="bitcount", budget=BUDGET)
        session.selection(spec)
        session.selection(spec.with_policy(INTEGER_POLICY))
        # One assemble + one baseline functional run serve both policies.
        assert session.stats.assemble_runs == 1
        assert session.stats.functional_runs == 1
        assert session.stats.selection_runs == 2

    def test_policies_share_baseline_timing(self):
        # Baseline timing depends on neither policy nor MGT options: every
        # policy variant must reuse one cached simulation.
        session = Session()
        spec = RunSpec(benchmark="bitcount", budget=BUDGET)
        session.baseline_timing(spec)
        session.baseline_timing(spec.with_policy(INTEGER_POLICY))
        session.baseline_timing(spec.with_mgt_options(MgtBuildOptions(collapsing=True)))
        assert session.stats.timing_runs == 1

    def test_warm_disk_cache_skips_all_simulation(self, tmp_path):
        spec = RunSpec(benchmark="bitcount", budget=BUDGET)
        cold = Session(cache_dir=tmp_path)
        cold_artifacts = cold.run(spec)
        assert cold.stats.simulations > 0
        warm = Session(cache_dir=tmp_path)
        warm_artifacts = warm.run(spec)
        assert warm.stats.simulations == 0
        assert warm.cache_stats.disk_hits > 0
        assert pickle.dumps(warm_artifacts.timing) == pickle.dumps(cold_artifacts.timing)

    def test_version_bump_invalidates_disk_cache(self, tmp_path):
        spec = RunSpec(benchmark="bitcount", budget=BUDGET)
        Session(cache_dir=tmp_path, version="1").run(spec)
        reused = Session(cache_dir=tmp_path, version="1")
        reused.run(spec)
        assert reused.stats.simulations == 0
        bumped = Session(cache_dir=tmp_path, version="2")
        bumped.run(spec)
        assert bumped.stats.simulations > 0

    def test_baseline_only_spec(self):
        session = Session()
        artifacts = session.run(RunSpec(benchmark="bitcount", budget=BUDGET,
                                        policy=None))
        assert artifacts.selection is None
        assert artifacts.coverage == 0.0
        assert artifacts.timing.cycles > 0

    def test_figure_harness_warm_cache_regenerates_without_simulation(self, tmp_path):
        names = ["bitcount"]
        configs = ("int", "int-mem")
        first = Session(cache_dir=tmp_path)
        run_figure6(ExperimentRunner(budget=BUDGET, session=first),
                    benchmarks=names, configs=configs)
        assert first.stats.simulations > 0
        second = Session(cache_dir=tmp_path)
        result = run_figure6(ExperimentRunner(budget=BUDGET, session=second),
                             benchmarks=names, configs=configs)
        assert second.stats.functional_runs == 0
        assert second.stats.timing_runs == 0
        assert result.table.value("bitcount", "int") > 0.0


# -- parallel fan-out -------------------------------------------------------------


class TestSessionMap:
    BENCHMARKS = ["bitcount", "crc", "frag", "gsm.toast"]

    def test_parallel_results_identical_to_serial(self):
        specs = [RunSpec(benchmark=name, budget=BUDGET) for name in self.BENCHMARKS]
        serial = Session().map(specs, workers=1)
        parallel = Session().map(specs, workers=4)
        assert [a.spec.label for a in parallel] == self.BENCHMARKS
        serial_bytes = pickle.dumps([(a.timing, a.baseline_timing, a.coverage)
                                     for a in serial])
        parallel_bytes = pickle.dumps([(a.timing, a.baseline_timing, a.coverage)
                                       for a in parallel])
        assert serial_bytes == parallel_bytes

    def test_map_workers_share_the_disk_cache(self, tmp_path):
        specs = [RunSpec(benchmark=name, budget=BUDGET)
                 for name in self.BENCHMARKS[:2]]
        Session(cache_dir=tmp_path).map(specs, workers=2)
        warm = Session(cache_dir=tmp_path)
        warm.map(specs, workers=1)
        assert warm.stats.simulations == 0

    def test_map_merges_worker_accounting(self):
        specs = [RunSpec(benchmark=name, budget=BUDGET)
                 for name in self.BENCHMARKS[:2]]
        session = Session()
        session.map(specs, workers=2)
        # The pool did the work, but the parent session must report it.
        assert session.stats.simulations > 0
        assert session.cache_stats.puts > 0


class TestSessionSweep:
    """The artifact-sharing fast path over :meth:`Session.map`."""

    BENCHMARKS = ["bitcount", "crc"]

    def _machine_sweep_specs(self):
        # Two benchmarks x three policy/machine variants: each benchmark's
        # baseline functional stages are shared by its three specs.
        from repro.minigraph import INTEGER_POLICY
        specs = []
        for name in self.BENCHMARKS:
            base = RunSpec(benchmark=name, budget=BUDGET)
            specs.extend([
                base,
                base.baseline_only(),
                base.with_policy(INTEGER_POLICY),
            ])
        return specs

    def test_sweep_matches_map(self):
        specs = self._machine_sweep_specs()
        mapped = Session().map(specs, workers=1)
        swept = Session().sweep(specs, workers=2)
        assert [a.spec.label for a in swept] == [a.spec.label for a in mapped]
        mapped_bytes = pickle.dumps([(a.timing, a.baseline_timing, a.coverage)
                                     for a in mapped])
        swept_bytes = pickle.dumps([(a.timing, a.baseline_timing, a.coverage)
                                    for a in swept])
        assert mapped_bytes == swept_bytes

    def test_sweep_shares_functional_runs_within_groups(self):
        specs = self._machine_sweep_specs()
        session = Session()
        session.sweep(specs, workers=2)
        # Per benchmark: one baseline profile run plus one rewritten-trace run
        # per selection policy (2).  map() with per-spec workers would have
        # re-profiled in every worker.
        assert session.stats.functional_runs == 3 * len(self.BENCHMARKS)

    def test_sweep_serial_keeps_input_order(self):
        specs = self._machine_sweep_specs()
        results = Session().sweep(specs, workers=1)
        assert [a.spec.spec_hash for a in results] == \
            [spec.spec_hash for spec in specs]

    def test_sweep_empty(self):
        assert Session().sweep([]) == []


# -- zero-baseline speedups -------------------------------------------------------


def _stub_stats(ipc: float) -> PipelineStats:
    stats = PipelineStats(cycles=100)
    stats.committed_instructions = int(round(ipc * 100))
    return stats


class TestZeroBaselineSpeedup:
    def test_run_artifacts_speedup_nan(self):
        from repro.api.session import RunArtifacts
        artifacts = RunArtifacts(
            spec=RunSpec(benchmark="bitcount"), program=None, profile=None,
            baseline_trace=None, timing=_stub_stats(1.0),
            baseline_timing=PipelineStats())
        assert math.isnan(artifacts.speedup)
        assert artifacts.report()["speedup"] is None

    def test_experiment_runner_speedup_nan(self, monkeypatch):
        runner = ExperimentRunner(budget=BUDGET)
        monkeypatch.setattr(runner, "run_baseline",
                            lambda benchmark, config: PipelineStats())
        monkeypatch.setattr(runner, "run_minigraph",
                            lambda *args, **kwargs: _stub_stats(1.0))
        speedup = runner.speedup("bitcount", DEFAULT_POLICY,
                                 baseline_config(), baseline_config=baseline_config())
        assert math.isnan(speedup)

    def test_minigraph_run_speedup_nan(self, monkeypatch):
        monkeypatch.setattr(MiniGraphRun, "baseline_stats",
                            lambda self, config=None: PipelineStats())
        monkeypatch.setattr(MiniGraphRun, "minigraph_stats",
                            lambda self, config=None: _stub_stats(1.0))
        run = MiniGraphRun(original=None, baseline_result=None, selection=None,
                           mgt=None, rewritten=None, rewritten_result=None)
        assert math.isnan(run.speedup())


# -- legacy shims -----------------------------------------------------------------


class TestCompatibilityShims:
    def test_prepare_minigraph_run_matches_legacy_shape(self):
        program = load_benchmark("gsm.toast")
        run = prepare_minigraph_run(program, budget=BUDGET)
        assert run.selection.template_count > 0
        assert 0.0 < run.coverage <= 1.0
        assert run.baseline_result.trace is not None
        assert run.rewritten_result.trace is not None
        stats = run.minigraph_stats()
        assert stats.cycles > 0

    def test_prepare_minigraph_run_shares_a_session(self):
        session = Session()
        program = load_benchmark("bitcount")
        prepare_minigraph_run(program, budget=BUDGET, session=session)
        work = session.stats.as_dict()
        prepare_minigraph_run(program, budget=BUDGET, session=session)
        assert session.stats.as_dict() == work

    def test_experiment_runner_rides_on_session(self):
        session = Session()
        runner = ExperimentRunner(budget=BUDGET, session=session)
        first = runner.baseline("bitcount")
        second = runner.baseline("bitcount")
        assert first is second
        assert session.stats.functional_runs == 1


# -- CLI --------------------------------------------------------------------------


def _run_cli(*args: str, cwd=None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, env=env, cwd=cwd,
                          timeout=600)


class TestCli:
    def test_run_json_report(self, tmp_path):
        result = _run_cli("--cache-dir", str(tmp_path), "--json", "--stats",
                          "run", "bitcount", "--budget", str(BUDGET))
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["spec"]["benchmark"] == "bitcount"
        assert payload["speedup"] is not None
        assert payload["session_stats"]["functional_runs"] > 0

    def test_cache_info_and_clear(self, tmp_path):
        _run_cli("--cache-dir", str(tmp_path), "run", "bitcount",
                 "--budget", str(BUDGET))
        info = _run_cli("--cache-dir", str(tmp_path), "--json", "cache", "info")
        assert info.returncode == 0, info.stderr
        assert json.loads(info.stdout)["disk_entries"] > 0
        cleared = _run_cli("--cache-dir", str(tmp_path), "--json", "cache", "clear")
        assert json.loads(cleared.stdout)["removed"] > 0
        info = _run_cli("--cache-dir", str(tmp_path), "--json", "cache", "info")
        assert json.loads(info.stdout)["disk_entries"] == 0

    def test_bench_sweep(self, tmp_path):
        result = _run_cli("--cache-dir", str(tmp_path), "--json", "bench",
                          "--suite", "embedded", "--limit", "2",
                          "--budget", str(BUDGET), "--workers", "1")
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert len(payload["results"]) == 2
        assert payload["bench"]["columns"] == ["coverage", "base-ipc", "ipc", "speedup"]
