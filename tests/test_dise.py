"""Tests for the DISE substrate: productions, engine, MGTT and MGPP."""

import pytest

from repro.dise import (
    DiseEngine,
    DiseError,
    MiniGraphTagTable,
    Operand,
    Pattern,
    Production,
    ReplacementInstruction,
    production_for_template,
    productions_for_selection,
)
from repro.isa.instruction import Instruction, make_handle
from repro.minigraph import (
    DEFAULT_POLICY,
    MiniGraphTable,
    MiniGraphTemplate,
    TemplateInstruction,
    external,
    internal,
    select_minigraphs,
)
from repro.sim import run_program
from repro.workloads import load_benchmark


def _load_template():
    return MiniGraphTemplate(
        instructions=(
            TemplateInstruction("ldq", src0=external(0), imm=16),
            TemplateInstruction("srli", src0=internal(0), imm=14),
            TemplateInstruction("andi", src0=internal(1), imm=1),
        ),
        num_inputs=1,
        out_index=2,
    )


class TestPatternsAndOperands:
    def test_pattern_matches_opcode(self):
        pattern = Pattern(op="addl")
        assert pattern.matches(Instruction("addl", rd=1, rs1=2, rs2=3))
        assert not pattern.matches(Instruction("subl", rd=1, rs1=2, rs2=3))

    def test_pattern_matches_codeword(self):
        pattern = Pattern(op="mg", codeword_id=12)
        assert pattern.matches(make_handle(1, 2, 3, 12))
        assert not pattern.matches(make_handle(1, 2, 3, 13))

    def test_operand_requires_exactly_one_source(self):
        with pytest.raises(DiseError):
            Operand(parameter="RS1", literal=3)
        with pytest.raises(DiseError):
            Operand()

    def test_parameter_resolution(self):
        matched = Instruction("addl", rd=7, rs1=8, rs2=9)
        assert Operand.rs1().resolve_register(matched) == 8
        assert Operand.rd().resolve_register(matched) == 7
        assert Operand.lit(5).resolve_immediate(matched) == 5

    def test_dise_registers_are_backed_by_reserved_registers(self):
        matched = make_handle(1, 2, 3, 0)
        first = Operand.dise(0).resolve_register(matched)
        second = Operand.dise(1).resolve_register(matched)
        assert first != second


class TestTransparentProduction:
    def test_expansion_appends_masking_instruction(self):
        # The paper's toy example: after every add, clear all but the low byte.
        production = Production(
            name="mask-after-add",
            pattern=Pattern(op="addl"),
            replacement=(
                ReplacementInstruction("addl", rd=Operand.rd(), rs1=Operand.rs1(),
                                       rs2=Operand.rs2()),
                ReplacementInstruction("andi", rd=Operand.rd(), rs1=Operand.rd(),
                                       imm=Operand.lit(0xFF)),
            ),
        )
        engine = DiseEngine()
        engine.load_production(production)
        outcome = engine.decode(Instruction("addl", rd=2, rs1=2, rs2=4))
        assert outcome.expanded
        assert [insn.op for insn in outcome.instructions] == ["addl", "andi"]
        assert outcome.instructions[1].imm == 0xFF

    def test_non_matching_instruction_passes_through(self):
        engine = DiseEngine()
        outcome = engine.decode(Instruction("subl", rd=1, rs1=2, rs2=3))
        assert not outcome.expanded
        assert outcome.instructions[0].op == "subl"


class TestMgtt:
    def test_install_and_approval(self):
        mgtt = MiniGraphTagTable(capacity=2)
        mgtt.install(5, approved=True)
        mgtt.install(6, approved=False)
        assert mgtt.is_approved(5)
        assert not mgtt.is_approved(6)
        assert 5 in mgtt and 6 in mgtt

    def test_lru_eviction(self):
        mgtt = MiniGraphTagTable(capacity=2)
        mgtt.install(1, approved=True)
        mgtt.install(2, approved=True)
        mgtt.touch(1)
        mgtt.install(3, approved=True)
        assert 1 in mgtt
        assert 2 not in mgtt


class TestMgppAndEngine:
    def test_handle_expansion_then_approval(self):
        template = _load_template()
        production = production_for_template(34, template)
        engine = DiseEngine()
        engine.load_production(production)
        handle = make_handle(4, None, 17, 34)
        # First decode: MGTT miss, the handle is expanded and pre-processed.
        first = engine.decode(handle)
        assert first.expanded
        assert [insn.op for insn in first.instructions] == ["ldq", "srli", "andi"]
        # Second decode: the MGID is approved and the handle stays in-line.
        second = engine.decode(handle)
        assert second.kept_handle
        assert 34 in engine.mgt
        assert engine.mgt.lookup(34).template.key() == template.key()

    def test_unknown_codeword_raises(self):
        engine = DiseEngine()
        with pytest.raises(DiseError):
            engine.decode(make_handle(1, 2, 3, 99))

    def test_oversized_production_is_expanded_not_approved(self):
        # A production with two memory operations can never be a mini-graph;
        # the MGPP must reject it and the engine must keep expanding it.
        production = Production(
            name="two-loads",
            pattern=Pattern(op="mg", codeword_id=50),
            replacement=(
                ReplacementInstruction("ldq", rd=Operand.dise(0), rs1=Operand.rs1(),
                                       imm=Operand.lit(0)),
                ReplacementInstruction("ldq", rd=Operand.rd(), rs1=Operand.dise(0),
                                       imm=Operand.lit(8)),
            ),
        )
        engine = DiseEngine()
        engine.load_production(production)
        handle = make_handle(4, None, 7, 50)
        first = engine.decode(handle)
        second = engine.decode(handle)
        assert first.expanded and second.expanded
        assert not engine.mgtt.is_approved(50)
        assert 50 not in engine.mgt

    def test_selection_round_trip_through_dise(self):
        """Export a real selection as productions; the MGPP-compiled MGT must
        drive a functionally identical execution of the rewritten program."""
        program = load_benchmark("gsm.toast")
        baseline = run_program(program, max_instructions=4000)
        selection = select_minigraphs(program, baseline.profile, policy=DEFAULT_POLICY)
        productions = productions_for_selection(selection)
        assert len(productions) == selection.template_count

        engine = DiseEngine()
        engine.load_productions(productions)
        # Pre-process every MGID once (first decode expands; second keeps).
        for selected in selection.selected:
            handle = make_handle(1, 2, 3, selected.mgid)
            engine.decode(handle)

        approved = [selected.mgid for selected in selection.selected
                    if engine.mgtt.is_approved(selected.mgid)]
        assert approved, "at least some selected mini-graphs must be DISE-expressible"

        from repro.program import rewrite_program
        sites = [instance.rewrite_site(selected.mgid)
                 for selected in selection.selected
                 for instance in selected.instances
                 if selected.mgid in approved]
        rewritten = rewrite_program(program, sites).program
        result = run_program(rewritten, mgt=engine.mgt, max_instructions=4000)
        # Memory state (the kernel's architectural output) must be identical;
        # dead interior register values are legitimately never materialised.
        assert result.memory.checksum() == baseline.memory.checksum()
