"""Documentation health: the docs tree exists, links resolve, CLI help runs.

Mirrors the CI docs job so broken docs fail tier-1 locally too.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_links  # noqa: E402


REQUIRED_DOCS = ("architecture.md", "api.md", "figures.md", "serve.md",
                 "fuzzing.md")


@pytest.mark.parametrize("name", REQUIRED_DOCS)
def test_docs_tree_exists(name):
    assert (REPO_ROOT / "docs" / name).is_file()


def test_markdown_links_resolve():
    errors = []
    for markdown in check_links.documentation_files(REPO_ROOT):
        assert markdown.exists(), f"missing documentation file {markdown}"
        errors.extend(check_links.check_file(markdown))
    assert errors == []


def test_readme_matches_cli_surface():
    """The README's CLI examples must name real sub-commands and flags."""
    from repro.api.cli import _build_parser
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    parser = _build_parser()
    subcommands = {"run", "figure", "grid", "bench", "cache",
                   "serve", "submit", "jobs", "fuzz"}
    for name in subcommands:
        assert f"repro {name}" in readme, f"README does not show `repro {name}`"
    # Every `repro <word>` the README shows must be a real sub-command.
    import re
    for match in re.finditer(r"^repro ([a-z]+)", readme, re.MULTILINE):
        assert match.group(1) in subcommands, \
            f"README shows unknown sub-command `repro {match.group(1)}`"
    assert "--record" in readme  # bench throughput records are documented
    parser.parse_args(["bench", "--record"])  # the flag exists


def test_cli_help_smoke(capsys):
    from repro.api.cli import main
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    assert "repro" in capsys.readouterr().out
