"""The incremental compilation front-end: registry, heap selection, memo.

Three families of guarantees:

* the heap-driven greedy selector is **bit-identical** to the kept O(n^2)
  reference loop (:func:`select_minigraphs_reference`) — property-tested on
  random programs with random block frequencies, and regression-tested on
  the embedded suite (pick order included);
* memoized enumeration returns exactly what a fresh enumeration returns,
  block for block, and the safety valves surface truncation instead of
  silently dropping candidates;
* the template registry's cached sort keys realise the seed's ``repr``
  tie-break order exactly, and interned ids never survive pickling.
"""

import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.minigraph import (
    DEFAULT_POLICY,
    INTEGER_POLICY,
    NON_SERIAL_NON_REPLAY_POLICY,
    TEMPLATE_REGISTRY,
    EnumerationLimits,
    EnumerationResult,
    candidate_template_id,
    clear_block_memo,
    enumerate_minigraphs,
    select_domain_minigraphs,
    select_minigraphs,
    select_minigraphs_reference,
)
from repro.minigraph.selection import group_candidates
from repro.program import Program
from repro.program.basic_block import BlockIndex
from repro.program.profile import BlockProfile
from repro.sim import run_program
from repro.workloads import REGISTRY, load_benchmark

# -- random program / profile generation ---------------------------------------

_REGS = [1, 2, 3, 4, 5, 6, 7, 8]


def _random_instruction(rng: random.Random) -> str:
    reg = lambda: rng.choice(_REGS)
    kind = rng.randrange(8)
    if kind < 3:
        op = rng.choice(["addq", "subq", "xor", "cmplt"])
        return f"{op} r{reg()},r{reg()},r{reg()}"
    if kind < 5:
        op = rng.choice(["addqi", "srli", "andi"])
        return f"{op} r{reg()},{rng.randrange(1, 64)},r{reg()}"
    if kind == 5:
        return f"ldq r{reg()},{8 * rng.randrange(8)}(r{reg()})"
    if kind == 6:
        return f"stq r{reg()},{8 * rng.randrange(8)}(r{reg()})"
    return f"addq r31,r{reg()},r{reg()}"  # zero-register read


def _random_program(seed: int) -> Program:
    rng = random.Random(seed)
    segments = rng.randrange(1, 4)
    lines = []
    for segment in range(segments):
        lines.append(f"seg{segment}:")
        for _ in range(rng.randrange(3, 11)):
            lines.append("  " + _random_instruction(rng))
        if segment + 1 < segments and rng.random() < 0.7:
            target = rng.randrange(segment + 1, segments)
            lines.append(f"  bne r{rng.choice(_REGS)},seg{target}")
    lines.append("  halt")
    return Program.from_assembly(f"random-{seed}", "\n".join(lines))


def _random_profile(program: Program, seed: int) -> BlockProfile:
    rng = random.Random(seed ^ 0x5EED)
    profile = BlockProfile(program_name=program.name)
    for block in BlockIndex(program).blocks:
        profile.counts[block.block_id] = rng.randrange(0, 8)
    profile.dynamic_instructions = sum(profile.counts.values()) * 4 + 1
    return profile


def _selection_fingerprint(selection):
    return {
        "picks": [(selected.template.key(),
                   [instance.member_indices for instance in selected.instances],
                   selected.dynamic_benefit)
                  for selected in selection.selected],
        "covered": selection.covered_dynamic_instructions,
        "candidates": selection.candidate_count,
        "truncated": selection.truncated,
        "dropped": selection.dropped_candidates,
    }


# -- heap selector vs reference (property) -------------------------------------

class TestHeapSelectorMatchesReference:
    @settings(deadline=None, max_examples=40)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_identical_selection_on_random_programs(self, seed):
        program = _random_program(seed)
        profile = _random_profile(program, seed)
        for policy in (DEFAULT_POLICY, INTEGER_POLICY,
                       NON_SERIAL_NON_REPLAY_POLICY,
                       DEFAULT_POLICY.with_mgt_entries(2)):
            fast = select_minigraphs(program, profile, policy=policy)
            reference = select_minigraphs_reference(program, profile, policy=policy)
            assert _selection_fingerprint(fast) == _selection_fingerprint(reference)

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_identical_selection_on_shared_candidate_lists(self, seed):
        # The Figure 5 sweep path: one enumeration, many policies.
        program = _random_program(seed)
        profile = _random_profile(program, seed)
        candidates = enumerate_minigraphs(program, EnumerationLimits(max_size=8))
        for entries in (1, 3, 512):
            policy = DEFAULT_POLICY.with_mgt_entries(entries).with_max_size(4)
            fast = select_minigraphs(program, profile, policy=policy,
                                     candidates=candidates)
            reference = select_minigraphs_reference(
                program, profile, policy=policy, candidates=candidates)
            assert _selection_fingerprint(fast) == _selection_fingerprint(reference)


# -- memoized enumeration equals fresh enumeration -----------------------------

class TestEnumerationMemo:
    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_memoized_equals_fresh(self, seed):
        program = _random_program(seed)
        limits = EnumerationLimits()
        clear_block_memo()
        fresh = enumerate_minigraphs(program, limits)
        assert fresh.memo_hits == 0
        memoized = enumerate_minigraphs(program, limits)
        assert memoized.memo_misses == 0
        assert list(memoized) == list(fresh)
        assert memoized.truncated_blocks == fresh.truncated_blocks
        assert memoized.dropped_subsets == fresh.dropped_subsets

    def test_memo_key_includes_limits(self):
        program = _random_program(7)
        clear_block_memo()
        wide = enumerate_minigraphs(program, EnumerationLimits(max_size=4))
        narrow = enumerate_minigraphs(program, EnumerationLimits(max_size=2))
        assert narrow.memo_misses > 0  # different limits never share entries
        assert all(candidate.size <= 2 for candidate in narrow)
        assert len(wide) >= len(narrow)

    def test_memo_shares_repeated_blocks_within_a_program(self):
        # Two byte-identical blocks (same ops, same branch target PC, same
        # live-out slice) followed by a distinct terminator block.
        body = """
        first:
          addq r1,r2,r3
          addq r3,r2,r4
          bne r4,exit
        second:
          addq r1,r2,r3
          addq r3,r2,r4
          bne r4,exit
        exit:
          halt
        """
        program = Program.from_assembly("repeated", body)
        clear_block_memo()
        result = enumerate_minigraphs(program, EnumerationLimits())
        # The first two blocks are identical in content and live-out slice.
        assert result.memo_hits >= 1


# -- truncation is surfaced ----------------------------------------------------

class TestTruncationSurfacing:
    def _dense_program(self) -> Program:
        # One block of interwoven dependences: plenty of connected subsets.
        lines = ["  addq r1,r2,r3"]
        for _ in range(10):
            lines.append("  addq r3,r1,r4")
            lines.append("  addq r4,r2,r3")
        lines.append("  halt")
        return Program.from_assembly("dense", "\n".join(lines))

    def test_candidate_cap_reports_truncation(self):
        program = self._dense_program()
        full = enumerate_minigraphs(program, EnumerationLimits())
        assert not full.truncated and full.dropped_subsets == 0
        capped = enumerate_minigraphs(
            program, EnumerationLimits(max_candidates_per_block=1))
        assert capped.truncated
        assert capped.truncated_blocks >= 1
        assert capped.dropped_subsets > 0
        assert len(capped) < len(full)

    def test_selection_result_carries_truncation(self):
        program = self._dense_program()
        profile = _random_profile(program, 1)
        capped = enumerate_minigraphs(
            program, EnumerationLimits(max_candidates_per_block=1))
        selection = select_minigraphs(program, profile, candidates=capped)
        assert selection.truncated
        assert selection.dropped_candidates == capped.dropped_subsets
        clean = select_minigraphs(program, profile)
        assert not clean.truncated and clean.dropped_candidates == 0


# -- registry ------------------------------------------------------------------

class TestTemplateRegistry:
    def test_sort_keys_match_repr_of_canonical_key(self):
        # Force a varied population, then check the fast-path sort keys are
        # byte-identical with the slow form they must reproduce.
        for seed in range(20):
            enumerate_minigraphs(_random_program(seed), EnumerationLimits(max_size=8))
        assert len(TEMPLATE_REGISTRY) > 0
        for tid in range(len(TEMPLATE_REGISTRY)):
            template = TEMPLATE_REGISTRY.template(tid)
            assert TEMPLATE_REGISTRY.sort_key(tid) == repr(template.key())

    def test_interning_is_stable_and_identity_shared(self):
        program = _random_program(3)
        first = enumerate_minigraphs(program, EnumerationLimits())
        second = enumerate_minigraphs(program, EnumerationLimits())
        for a, b in zip(first, second):
            assert a.template_id == b.template_id
            assert a.template is b.template  # canonical registry object

    def test_template_id_is_stripped_on_pickle(self):
        program = _random_program(11)
        candidates = enumerate_minigraphs(program, EnumerationLimits())
        if not candidates:
            pytest.skip("random program produced no candidates")
        candidate = candidates[0]
        assert candidate.template_id is not None
        clone = pickle.loads(pickle.dumps(candidate))
        assert clone.template_id is None
        assert clone == candidate  # identity excludes the cached id
        assert candidate_template_id(clone) == candidate.template_id

    def test_ranks_realise_sort_key_order(self):
        for seed in range(5):
            enumerate_minigraphs(_random_program(seed), EnumerationLimits())
        tids = list(range(len(TEMPLATE_REGISTRY)))
        ranks = TEMPLATE_REGISTRY.ranks(tids)
        ordered = sorted(tids, key=TEMPLATE_REGISTRY.sort_key)
        assert [ranks[tid] for tid in ordered] == list(range(len(ordered)))


# -- streaming domain selection matches the seed algorithm ---------------------

def _domain_reference(programs, suite_name, policy):
    """The seed's select_domain_minigraphs, re-materialised for comparison."""
    per_program_candidates = {}
    total_benefit = {}
    representative = {}
    limits = EnumerationLimits(max_size=policy.max_size,
                               allow_memory=policy.allow_memory,
                               allow_branches=policy.allow_branches)
    for name, (program, profile) in programs.items():
        candidates = policy.filter_candidates(enumerate_minigraphs(program, limits))
        per_program_candidates[name] = candidates
        for key, group in group_candidates(candidates).items():
            representative.setdefault(key, group.template)
            benefit = group.benefit(profile, set())
            total_benefit[key] = total_benefit.get(key, 0) + benefit
    ranked = sorted(total_benefit.items(), key=lambda item: (-item[1], repr(item[0])))
    shared_keys = {key for key, benefit in ranked[:policy.max_templates] if benefit > 0}
    shared_templates = [representative[key] for key, _ in ranked[:policy.max_templates]
                        if key in shared_keys]
    per_program = {}
    for name, (program, profile) in programs.items():
        restricted = [candidate for candidate in per_program_candidates[name]
                      if candidate.template.key() in shared_keys]
        per_program[name] = select_minigraphs_reference(
            program, profile, policy=policy, candidates=restricted)
    return shared_templates, per_program


class TestStreamingDomainSelection:
    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_matches_seed_algorithm(self, seed):
        programs = {}
        for offset in range(3):
            program = _random_program(seed + offset * 1_000)
            programs[program.name] = (program, _random_profile(program, seed + offset))
        for policy in (DEFAULT_POLICY, DEFAULT_POLICY.with_mgt_entries(2)):
            domain = select_domain_minigraphs(programs, suite_name="prop",
                                              policy=policy)
            expected_templates, expected_per_program = _domain_reference(
                programs, "prop", policy)
            assert [t.key() for t in domain.templates] == \
                [t.key() for t in expected_templates]
            assert set(domain.per_program) == set(expected_per_program)
            for name, result in domain.per_program.items():
                assert _selection_fingerprint(result) == \
                    _selection_fingerprint(expected_per_program[name])


# -- embedded-suite regression: pick order unchanged ---------------------------

class TestEmbeddedSuiteRegression:
    @pytest.fixture(scope="class")
    def embedded_programs(self):
        programs = {}
        for name in REGISTRY.names("embedded"):
            program = load_benchmark(name)
            result = run_program(program, max_instructions=2_000)
            programs[name] = (program, result.profile)
        return programs

    def test_selection_order_unchanged(self, embedded_programs):
        for name, (program, profile) in embedded_programs.items():
            fast = select_minigraphs(program, profile, policy=DEFAULT_POLICY)
            reference = select_minigraphs_reference(program, profile,
                                                    policy=DEFAULT_POLICY)
            assert [selected.template.key() for selected in fast.selected] == \
                [selected.template.key() for selected in reference.selected], name
            assert _selection_fingerprint(fast) == \
                _selection_fingerprint(reference), name

    def test_domain_selection_order_unchanged(self, embedded_programs):
        policy = DEFAULT_POLICY.with_mgt_entries(64)
        domain = select_domain_minigraphs(embedded_programs,
                                          suite_name="embedded", policy=policy)
        expected_templates, expected_per_program = _domain_reference(
            embedded_programs, "embedded", policy)
        assert [t.key() for t in domain.templates] == \
            [t.key() for t in expected_templates]
        for name, result in domain.per_program.items():
            assert _selection_fingerprint(result) == \
                _selection_fingerprint(expected_per_program[name]), name
