"""The ``repro serve`` daemon: protocol, queue, pool, server, client, CLI."""

import io
import json
import os
import signal
import socket as socket_module
import threading
import time

import pytest

from repro.api import RunSpec, Session
from repro.api.store import MISS, ArtifactStore
from repro.grid import Axis, GridSpec, cell_key, plan_cells
from repro.grid.engine import GridRow
from repro.grid.spec import GridCell
from repro.minigraph.policies import DEFAULT_POLICY
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.pool import PoolCallbacks, PoolTask, ProcessWorkerPool
from repro.serve.queue import AdmissionError, JobQueue, JobState
from repro.serve.server import ServeServer

BUDGET = 1_200


def _mini_grid(benchmarks=("bitcount",), budget=BUDGET, name="serve-test"):
    axes = (Axis("benchmark", tuple(benchmarks)),
            Axis("config", ("minigraph", "baseline")))

    def build(point):
        policy = DEFAULT_POLICY if point["config"] == "minigraph" else None
        return RunSpec(benchmark=point["benchmark"], budget=budget,
                       policy=policy)

    return GridSpec(name=name, axes=axes, build=build, title="serve test")


def _stage(spec=None):
    spec = spec or RunSpec(benchmark="bitcount", budget=BUDGET)
    return [GridCell(index=0, point=(("benchmark", "bitcount"),), spec=spec)]


@pytest.fixture()
def daemon(tmp_path):
    """A started daemon on a private socket + store; stopped afterwards."""
    server = ServeServer(tmp_path / "serve.sock",
                         cache_dir=tmp_path / "cache", workers=2)
    server.start()
    yield server
    server.stop(drain=False)


def _client(server, **kwargs):
    return ServeClient(server.socket_path, retry_connect=10.0, **kwargs)


# -- protocol -----------------------------------------------------------------------


class TestProtocol:
    def test_message_round_trip(self):
        message = {"op": "submit", "priority": 3, "job": {"kind": "grid"}}
        assert protocol.decode_message(protocol.encode_message(message)) \
            == message

    def test_decode_rejects_non_objects(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(b"[1, 2]\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(b"not json\n")

    def test_stream_round_trip_over_socketpair(self):
        left, right = socket_module.socketpair()
        a, b = protocol.MessageStream(left), protocol.MessageStream(right)
        a.send({"op": "hello", "protocol": 1})
        assert b.recv() == {"op": "hello", "protocol": 1}
        b.close()
        assert a.recv() is None  # clean close reads as None
        a.close()

    def test_error_response_carries_structured_code(self):
        response = protocol.error_response("submit", "queue-full", "full",
                                           active=4, limit=4)
        assert response["ok"] is False
        assert response["error"]["code"] == "queue-full"
        assert response["error"]["details"] == {"active": 4, "limit": 4}

    def test_handshake_rejects_protocol_mismatch(self, daemon):
        sock = socket_module.socket(socket_module.AF_UNIX,
                                    socket_module.SOCK_STREAM)
        sock.connect(str(daemon.socket_path))
        stream = protocol.MessageStream(sock)
        stream.send({"op": "hello", "protocol": 999})
        response = stream.recv()
        stream.close()
        assert response["ok"] is False
        assert response["error"]["code"] == "protocol-mismatch"


# -- job queue ----------------------------------------------------------------------


class TestJobQueue:
    def test_queue_full_submission_is_structured_rejection(self):
        queue = JobQueue(limit=2)
        for _ in range(2):
            queue.submit(kind="cells", namespace="", priority=0,
                         stages=[_stage()])
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(kind="cells", namespace="", priority=0,
                         stages=[_stage()])
        assert excinfo.value.code == "queue-full"
        assert excinfo.value.details == {"active": 2, "limit": 2}

    def test_draining_queue_rejects_submits(self):
        queue = JobQueue(limit=4)
        queue.begin_drain()
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(kind="cells", namespace="", priority=0,
                         stages=[_stage()])
        assert excinfo.value.code == "draining"

    def test_priority_order_then_fifo(self):
        queue = JobQueue(limit=8)
        low = queue.submit(kind="cells", namespace="", priority=0,
                           stages=[_stage()])
        high = queue.submit(kind="cells", namespace="", priority=5,
                            stages=[_stage()])
        low2 = queue.submit(kind="cells", namespace="", priority=0,
                            stages=[_stage()])
        order = [queue.next_stage()[0].id for _ in range(3)]
        assert order == [high.id, low.id, low2.id]

    def test_terminal_job_drops_late_rows(self):
        queue = JobQueue(limit=4)
        job = queue.submit(kind="cells", namespace="", priority=0,
                           stages=[_stage()])
        queue.next_stage()
        queue.cancel(job.id)
        queue.append_row(job, {"index": 0})
        assert job.state is JobState.CANCELLED
        assert job.rows == []

    def test_worker_death_retries_once_then_quarantines(self):
        queue = JobQueue(limit=4)
        job = queue.submit(kind="cells", namespace="", priority=0,
                           stages=[_stage()])
        claimed, index = queue.next_stage()
        assert claimed is job
        queue.worker_died(job, index)           # first death: re-queued
        assert job.state is JobState.RUNNING
        claimed, index = queue.next_stage()     # retry claim
        assert claimed is job
        queue.worker_died(job, index)           # second death: quarantined
        assert job.state is JobState.QUARANTINED
        assert job.error["code"] == "quarantined"
        assert queue.next_stage() is None

    def test_release_stage_does_not_count_an_attempt(self):
        queue = JobQueue(limit=4)
        job = queue.submit(kind="cells", namespace="", priority=0,
                           stages=[_stage()])
        _, index = queue.next_stage()
        queue.release_stage(job, index)
        assert job.stage_attempts[index] == 0
        assert queue.next_stage() == (job, index)

    def test_empty_job_is_born_done_with_prepopulated_rows(self):
        queue = JobQueue(limit=4)
        job = queue.submit(kind="cells", namespace="", priority=0,
                          stages=[], rows=[{"index": 0, "resumed": True}])
        assert job.state is JobState.DONE
        assert job.rows == [{"index": 0, "resumed": True}]


# -- daemon end-to-end --------------------------------------------------------------


class TestServeEndToEnd:
    def test_rows_bit_identical_to_serial_run_grid(self, daemon):
        grid = _mini_grid()
        with _client(daemon) as client:
            rows, job = client.run_to_completion(
                client.submit_grid(grid, resume=True))
        assert job["state"] == "done"
        reference = Session(cache_dir=None)
        serial = {row.index: row.as_dict()
                  for row in reference.run_grid(grid, workers=0)}
        assert len(rows) == len(serial)
        for row in rows:
            expected = dict(serial[row["index"]])
            got = dict(row)
            expected.pop("resumed"), got.pop("resumed")
            assert got == expected

    def test_warm_resubmit_serves_entirely_from_store(self, daemon):
        """Acceptance: a warm daemon re-serves a grid with zero
        recompilation — every cell resume-served, no stages planned."""
        grid = _mini_grid()
        with _client(daemon) as client:
            client.run_to_completion(client.submit_grid(grid, resume=True))
            response = client.submit_grid(grid, resume=True)
            rows, job = client.run_to_completion(response)
        assert response["state"] == "done"       # born terminal
        assert response["stages"] == 0           # nothing left to execute
        assert response["resumed"] == len(rows)
        assert all(row["resumed"] for row in rows)
        assert job["session_stats"] == {}        # zero simulations

    def test_second_client_dedups_through_shared_store(self, daemon):
        grid = _mini_grid()
        with _client(daemon) as first:
            rows_first, _ = first.run_to_completion(
                first.submit_grid(grid, resume=True))
        with _client(daemon) as second:
            response = second.submit_grid(grid, resume=True)
            rows_second, _ = second.run_to_completion(response)
        hits = response["resumed"]
        assert hits / len(rows_second) >= 0.9
        key = lambda row: row["index"]
        strip = lambda row: {k: v for k, v in row.items() if k != "resumed"}
        assert sorted(map(strip, rows_first), key=key) \
            == sorted(map(strip, rows_second), key=key)

    def test_namespaces_isolate_row_artifacts(self, daemon):
        grid = _mini_grid()
        with _client(daemon, namespace="tenant-a") as tenant_a:
            tenant_a.run_to_completion(tenant_a.submit_grid(grid))
        with _client(daemon, namespace="tenant-b") as tenant_b:
            response = tenant_b.submit_grid(grid, resume=True)
        # A different namespace never resumes from tenant-a's rows...
        assert response["resumed"] == 0
        with _client(daemon, namespace="tenant-a") as tenant_a:
            again = tenant_a.submit_grid(grid, resume=True)
        # ...but the same namespace does.
        assert again["resumed"] == len(list(grid.cells()))

    def test_artifact_jobs_return_full_run_artifacts(self, daemon):
        spec = RunSpec(benchmark="bitcount", budget=BUDGET,
                       policy=DEFAULT_POLICY)
        remote = Session(remote=daemon.socket_path)
        artifacts = remote.run(spec)
        remote.close()
        reference = Session(cache_dir=None).run(spec)
        assert artifacts.timing.cycles == reference.timing.cycles
        assert artifacts.timing.ipc == reference.timing.ipc
        assert artifacts.coverage == reference.coverage

    def test_remote_session_absorbs_worker_accounting(self, daemon):
        remote = Session(remote=daemon.socket_path)
        remote.run(RunSpec(benchmark="bitcount", budget=BUDGET,
                           policy=DEFAULT_POLICY))
        assert remote.stats.simulations > 0
        remote.close()

    def test_remote_run_grid_streams_grid_rows(self, daemon):
        grid = _mini_grid()
        remote = Session(remote=daemon.socket_path)
        rows = list(remote.run_grid(grid, resume=True))
        remote.close()
        assert all(isinstance(row, GridRow) for row in rows)
        assert sorted(row.index for row in rows) \
            == [cell.index for cell in grid.cells()]

    def test_unknown_job_poll_is_structured(self, daemon):
        with _client(daemon) as client:
            with pytest.raises(ServeError) as excinfo:
                client.poll("job-9999")
        assert excinfo.value.code == "unknown-job"

    def test_queue_full_round_trips_to_client(self, tmp_path):
        server = ServeServer(tmp_path / "serve.sock",
                             cache_dir=tmp_path / "cache", workers=1,
                             queue_limit=1)
        server.start()
        try:
            grid = _mini_grid(budget=20_000)
            with _client(server) as client:
                client.submit_grid(grid)           # occupies the queue
                with pytest.raises(ServeError) as excinfo:
                    client.submit_grid(grid)
            assert excinfo.value.code == "queue-full"
            assert excinfo.value.details["limit"] == 1
        finally:
            server.stop(drain=False)

    def test_cancel_mid_stage_stops_pending_work(self, tmp_path):
        server = ServeServer(tmp_path / "serve.sock",
                             cache_dir=tmp_path / "cache", workers=1)
        server.start()
        try:
            # Two distinct benchmarks = two stages on one worker: cancel
            # while the first is in flight, the second must never start.
            grid = _mini_grid(benchmarks=("bitcount", "crc"), budget=30_000)
            with _client(server) as client:
                job_id = client.submit_grid(grid)["job_id"]
                job = client.cancel(job_id)
                assert job["state"] == "cancelled"
                final = client.poll(job_id)
            assert final["state"] == "cancelled"
            assert final["error"]["code"] == "cancelled"
        finally:
            server.stop(drain=False)

    @staticmethod
    def _await_exit(server, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not server.socket_path.exists():
                return
            time.sleep(0.05)
        raise AssertionError("daemon did not exit after drain")

    @staticmethod
    def _assert_drained_rows(server, grid):
        """Drain ran the in-flight job to completion: every cell's row
        artifact was persisted to the daemon store before exit."""
        store = ArtifactStore(server.cache_dir, version=server.version)
        for cell in grid.cells():
            assert store.get(cell_key(cell.spec, server.version)) is not MISS

    def test_shutdown_drains_in_flight_and_rejects_new(self, tmp_path):
        server = ServeServer(tmp_path / "serve.sock",
                             cache_dir=tmp_path / "cache", workers=1)
        server.start()
        grid = _mini_grid(budget=60_000)
        try:
            with _client(server) as client:
                client.submit_grid(grid)
                client.shutdown(drain=True)
            # Draining: new submissions get a structured rejection while the
            # in-flight job keeps running...
            with _client(server) as late:
                with pytest.raises(ServeError) as excinfo:
                    late.submit_grid(grid)
                assert excinfo.value.code == "draining"
            # ...then the daemon exits on its own, after (not before) the
            # job completed and persisted every row artifact.
            self._await_exit(server)
            self._assert_drained_rows(server, grid)
        finally:
            server.stop(drain=False)

    def test_sigterm_triggers_graceful_drain(self, tmp_path):
        server = ServeServer(tmp_path / "serve.sock",
                             cache_dir=tmp_path / "cache", workers=1)
        server.start()
        handled = signal.getsignal(signal.SIGTERM)
        grid = _mini_grid(budget=60_000)
        try:
            # Wire SIGTERM exactly as the CLI does, then raise it in-process.
            signal.signal(signal.SIGTERM,
                          lambda *_: server.request_shutdown(drain=True))
            with _client(server) as client:
                client.submit_grid(grid)
                os.kill(os.getpid(), signal.SIGTERM)
                with pytest.raises(ServeError) as excinfo:
                    client.submit_grid(grid)
                assert excinfo.value.code == "draining"
            self._await_exit(server)
            self._assert_drained_rows(server, grid)
        finally:
            signal.signal(signal.SIGTERM, handled)
            server.stop(drain=False)


#: Pid of the test (= daemon) process; pool workers fork from it.
_DAEMON_PID = os.getpid()


class _WorkerKillerSpec(RunSpec):
    """A spec whose *execution* SIGKILLs the worker process running it.

    Daemon-side handling (planning, cache keying) happens in the test
    process and is untouched by the pid guard; only a forked pool worker
    that actually starts running the cell dies.  This makes "a job that
    keeps killing its workers" fully deterministic — no racing ``os.kill``
    against the scheduler.
    """

    @property
    def resolved_machine(self):
        if os.getpid() != _DAEMON_PID:
            os.kill(os.getpid(), signal.SIGKILL)
        return super().resolved_machine


class TestWorkerDeath:
    def test_killed_worker_job_retried_then_completes(self, tmp_path):
        """SIGKILL one worker mid-stage: the stage is retried on a fresh
        worker and the job still completes with correct rows."""
        server = ServeServer(tmp_path / "serve.sock",
                             cache_dir=tmp_path / "cache", workers=1,
                             backend="process")
        try:
            server.start()
        except (OSError, PermissionError):
            pytest.skip("process pools unavailable")
        try:
            grid = _mini_grid(budget=60_000)
            with _client(server) as client:
                job_id = client.submit_grid(grid)["job_id"]
                deadline = time.monotonic() + 60
                victim = None
                while time.monotonic() < deadline and victim is None:
                    busy = client.status()["busy_worker_pids"]
                    if busy:
                        victim = busy[0]
                    else:
                        time.sleep(0.02)
                assert victim is not None, "job never reached a worker"
                os.kill(victim, signal.SIGKILL)
                rows = list(client.stream(job_id))
                job = client.poll(job_id)
            assert job["state"] == "done"
            assert job["attempts"] >= 2          # the stage ran twice
            assert len(rows) == len(list(grid.cells()))
            assert len({row["index"] for row in rows}) == len(rows)
        finally:
            server.stop(drain=False)

    def test_job_that_kills_two_workers_is_quarantined(self, tmp_path):
        """A job that kills every worker it lands on is retried exactly once
        and then quarantined with a structured error — and the daemon
        (respawning workers both times) keeps serving other jobs."""
        server = ServeServer(tmp_path / "serve.sock",
                             cache_dir=tmp_path / "cache", workers=1,
                             backend="process")
        try:
            server.start()
        except (OSError, PermissionError):
            pytest.skip("process pools unavailable")
        try:
            killer = GridCell(
                index=0, point=(("benchmark", "bitcount"),),
                spec=_WorkerKillerSpec(benchmark="bitcount", budget=BUDGET))
            with _client(server) as client:
                job_id = client.submit_cells(
                    [killer], label="killer", resume=False)["job_id"]
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    job = client.poll(job_id)
                    if job["state"] not in ("running", "queued"):
                        break
                    time.sleep(0.05)
            assert job["state"] == "quarantined"
            assert job["error"]["code"] == "quarantined"
            assert job["attempts"] >= 2          # original run + one retry
            # The daemon survived two worker deaths: a fresh submit works.
            with _client(server) as client:
                rows, job = client.run_to_completion(
                    client.submit_grid(_mini_grid(), resume=True))
            assert job["state"] == "done"
        finally:
            server.stop(drain=False)

    def test_synth_grid_survives_worker_death_bit_identical(self, tmp_path):
        """Fuzz load through the daemon: a synth-workload grid (resolved
        purely from ``synth:`` names, no registry state) is submitted via
        ServeClient, one worker is SIGKILLed mid-job, and the retried job's
        rows are bit-identical to a serial ``run_grid`` of the same grid."""
        from repro.fuzz import synth
        from repro.grid.engine import run_grid

        names = tuple(synth(seed=seed) for seed in range(4))
        axes = (Axis("workload", names),
                Axis("config", ("minigraph", "baseline")))

        def build(point):
            policy = DEFAULT_POLICY if point["config"] == "minigraph" else None
            return RunSpec(benchmark=point["workload"], budget=20_000,
                           policy=policy)

        grid = GridSpec(name="synth-fuzz-load", axes=axes, build=build)
        server = ServeServer(tmp_path / "serve.sock",
                             cache_dir=tmp_path / "cache", workers=1,
                             backend="process")
        try:
            server.start()
        except (OSError, PermissionError):
            pytest.skip("process pools unavailable")
        try:
            with _client(server) as client:
                job_id = client.submit_grid(grid)["job_id"]
                deadline = time.monotonic() + 60
                victim = None
                while time.monotonic() < deadline and victim is None:
                    busy = client.status()["busy_worker_pids"]
                    if busy:
                        victim = busy[0]
                    else:
                        time.sleep(0.02)
                assert victim is not None, "job never reached a worker"
                os.kill(victim, signal.SIGKILL)
                served = list(client.stream(job_id))
                job = client.poll(job_id)
            assert job["state"] == "done"
            assert job["attempts"] >= 2          # the killed stage reran
            serial = [row.as_dict()
                      for row in run_grid(Session(cache_dir=None), grid)]
            served_by_index = {row["index"]: row for row in served}
            assert len(served_by_index) == len(serial)
            for expected in serial:
                actual = served_by_index[expected["index"]]
                for column in ("benchmark", "spec_hash", "coverage",
                               "baseline_ipc", "ipc", "speedup", "cycles",
                               "baseline_cycles", "templates"):
                    assert actual[column] == expected[column], (
                        f"row {expected['index']} column {column}: daemon "
                        f"{actual[column]!r} != serial {expected[column]!r}")
        finally:
            server.stop(drain=False)


# -- satellite regressions ----------------------------------------------------------


class TestStorePruneLock:
    def test_prune_skips_version_dir_with_live_writer(self, tmp_path):
        """Regression: prune() racing an in-flight put() must not delete a
        fresh entry.  A store that has written holds a shared lock on its
        version directory; prune skips locked directories entirely."""
        live = ArtifactStore(tmp_path, version="0.9.0")
        live.put("fresh", {"payload": 1})
        pruner = ArtifactStore(tmp_path, version="1.0.0")
        pruner.put("mine", {"payload": 2})
        removed, _ = pruner.prune()
        assert removed == 0
        reader = ArtifactStore(tmp_path, version="0.9.0")
        assert reader.get("fresh") == {"payload": 1}
        live.close()

    def test_prune_evicts_after_writer_closes(self, tmp_path):
        stale = ArtifactStore(tmp_path, version="0.9.0")
        stale.put("old", {"payload": 1})
        stale.close()
        pruner = ArtifactStore(tmp_path, version="1.0.0")
        pruner.put("mine", {"payload": 2})
        removed, freed = pruner.prune()
        assert removed == 1
        assert freed > 0
        assert not (tmp_path / "v-0.9.0").exists()
        assert pruner.get("mine") == {"payload": 2}

    def test_close_is_reentrant_and_reacquired_on_next_put(self, tmp_path):
        store = ArtifactStore(tmp_path, version="1.0.0")
        store.put("a", 1)
        store.close()
        store.close()                      # idempotent
        store.put("b", 2)                  # re-acquires the activity lock
        other = ArtifactStore(tmp_path, version="2.0.0")
        other.put("c", 3)
        removed, _ = other.prune()
        assert removed == 0                # v-1.0.0 is live again
        store.close()


class TestBrokenPipe:
    def test_main_returns_zero_when_stdout_pipe_closes(self, monkeypatch,
                                                       tmp_path):
        """`repro grid --output ... | head` must exit 0, not traceback."""
        from repro.api import cli

        class _ClosedPipe(io.StringIO):
            def write(self, text):
                raise BrokenPipeError(32, "Broken pipe")

            def fileno(self):
                raise OSError("no fileno")     # dup2 redirect must cope

        monkeypatch.setattr("sys.stdout", _ClosedPipe())
        code = cli.main(["--no-disk-cache", "--json", "grid", "--name",
                         "mini", "--benchmarks", "bitcount", "--budget",
                         "500", "--output", str(tmp_path / "rows.jsonl")])
        assert code == 0

    def test_grid_piped_to_head_exits_cleanly(self, tmp_path):
        import subprocess
        import sys as _sys
        script = ("import sys; from repro.api.cli import main; "
                  "sys.exit(main(['--no-disk-cache', '--json', 'grid', "
                  "'--name', 'mini', '--benchmarks', 'bitcount', "
                  "'--budget', '500']))")
        reader, writer = os.pipe()
        env = dict(os.environ)
        process = subprocess.Popen(
            [_sys.executable, "-c", script], stdout=writer,
            stderr=subprocess.PIPE, env=env)
        os.close(writer)
        os.read(reader, 64)        # consume a little, then hang up
        os.close(reader)
        _, stderr = process.communicate(timeout=240)
        assert process.returncode == 0, stderr.decode()
        assert b"Traceback" not in stderr
        assert b"Exception ignored" not in stderr


# -- serve CLI ----------------------------------------------------------------------


class TestServeCli:
    def test_cli_serve_status_without_daemon(self, tmp_path, capsys):
        from repro.api.cli import main
        code = main(["serve", "status", "--socket",
                     str(tmp_path / "nope.sock")])
        assert code == 1
        assert "no serve daemon" in capsys.readouterr().err

    def test_cli_submit_and_jobs_against_daemon(self, daemon, capsys):
        from repro.api.cli import main
        code = main(["submit", "--grid", "mini", "--benchmarks", "bitcount",
                     "--budget", str(BUDGET), "--socket",
                     str(daemon.socket_path), "--follow"])
        assert code == 0
        out = capsys.readouterr().out
        rows = [json.loads(line) for line in out.splitlines() if line]
        assert rows and all("spec_hash" in row for row in rows)
        code = main(["jobs", "--socket", str(daemon.socket_path)])
        assert code == 0
        assert "done" in capsys.readouterr().out
