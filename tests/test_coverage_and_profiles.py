"""Tests for profiles, coverage accounting, sweeps and robustness reports."""

import pytest

from repro.minigraph import (
    DEFAULT_POLICY,
    INTEGER_POLICY,
    measure_selection_on_profile,
    robustness_report,
    select_domain_minigraphs,
    select_minigraphs,
    sweep_coverage,
)
from repro.program import BlockProfile, profile_from_block_counts
from repro.sim import run_program
from repro.workloads import load_benchmark


def _artifacts(name, budget=5000):
    program = load_benchmark(name)
    result = run_program(program, max_instructions=budget)
    return program, result.profile


class TestBlockProfile:
    def test_record_and_frequency(self):
        profile = BlockProfile(program_name="p")
        profile.record_block(0, useful_size=4, times=3)
        assert profile.frequency(0) == 3
        assert profile.frequency(1) == 0
        assert profile.dynamic_instructions == 12

    def test_merge_accumulates(self):
        a = BlockProfile(program_name="p", counts={0: 2}, dynamic_instructions=8)
        b = BlockProfile(program_name="p", counts={0: 1, 1: 5}, dynamic_instructions=20)
        merged = a.merge(b)
        assert merged.counts == {0: 3, 1: 5}
        assert merged.dynamic_instructions == 28

    def test_merge_rejects_other_program(self):
        a = BlockProfile(program_name="p")
        b = BlockProfile(program_name="q")
        with pytest.raises(ValueError):
            a.merge(b)

    def test_hottest_blocks_sorted(self):
        profile = BlockProfile(program_name="p", counts={0: 5, 1: 50, 2: 10})
        assert [block for block, _ in profile.hottest_blocks(2)] == [1, 2]

    def test_profile_from_block_counts(self):
        program = load_benchmark("bitcount")
        profile = profile_from_block_counts(program, {0: 2})
        assert profile.frequency(0) == 2
        assert profile.dynamic_instructions > 0

    def test_scaled(self):
        profile = BlockProfile(program_name="p", counts={0: 10}, dynamic_instructions=40)
        scaled = profile.scaled(0.5)
        assert scaled.counts[0] == 5
        assert scaled.dynamic_instructions == 20


class TestCoverageSweep:
    def test_coverage_monotone_in_mgt_entries(self):
        program, profile = _artifacts("gcc")
        sweep = sweep_coverage(program, profile, base_policy=DEFAULT_POLICY,
                               mgt_sizes=(1, 4, 512), graph_sizes=(4,))
        assert (sweep.coverage_at(1, 4) <= sweep.coverage_at(4, 4)
                <= sweep.coverage_at(512, 4))

    def test_coverage_monotone_in_graph_size(self):
        program, profile = _artifacts("adpcm.encode")
        sweep = sweep_coverage(program, profile, base_policy=DEFAULT_POLICY,
                               mgt_sizes=(512,), graph_sizes=(2, 3, 4))
        assert (sweep.coverage_at(512, 2) <= sweep.coverage_at(512, 3)
                <= sweep.coverage_at(512, 4))

    def test_integer_memory_covers_at_least_integer(self):
        program, profile = _artifacts("frag")
        integer = select_minigraphs(program, profile, policy=INTEGER_POLICY).coverage
        memory = select_minigraphs(program, profile, policy=DEFAULT_POLICY).coverage
        assert memory >= integer

    def test_coverage_by_size_sums_to_total(self):
        program, profile = _artifacts("gsm.toast")
        selection = select_minigraphs(program, profile, policy=DEFAULT_POLICY)
        assert sum(selection.coverage_by_size().values()) == pytest.approx(selection.coverage)

    def test_two_instruction_graphs_dominate(self):
        """The paper: ~60% of coverage comes from 2-instruction mini-graphs."""
        totals = {2: 0.0, "other": 0.0}
        for name in ("gcc", "frag", "gsm.toast", "bitcount"):
            program, profile = _artifacts(name)
            selection = select_minigraphs(program, profile, policy=DEFAULT_POLICY)
            for size, coverage in selection.coverage_by_size().items():
                key = 2 if size == 2 else "other"
                totals[key] += coverage
        assert totals[2] > 0.0


class TestDomainSelection:
    def test_domain_mgt_is_shared_and_bounded(self):
        programs = {}
        for name in ("frag", "rtr", "drr"):
            programs[name] = _artifacts(name)
        result = select_domain_minigraphs(programs, suite_name="comm",
                                          policy=DEFAULT_POLICY.with_mgt_entries(16))
        assert result.template_count <= 16
        assert set(result.per_program) == set(programs)

    def test_domain_coverage_not_above_application_specific(self):
        programs = {}
        for name in ("bitcount", "sha", "crc"):
            programs[name] = _artifacts(name)
        policy = DEFAULT_POLICY.with_mgt_entries(8)
        domain = select_domain_minigraphs(programs, suite_name="embedded", policy=policy)
        for name, (program, profile) in programs.items():
            own = select_minigraphs(program, profile, policy=policy).coverage
            assert domain.per_program[name].coverage <= own + 1e-9


class TestRobustness:
    def test_cross_input_coverage_not_above_reference(self):
        program, reference_profile = _artifacts("gsm.toast")
        train = load_benchmark("gsm.toast", "train")
        train_profile = run_program(train, max_instructions=5000).profile
        report = robustness_report(program, reference_profile, train_profile,
                                   policy=DEFAULT_POLICY)
        assert report.cross_input_coverage <= report.reference_coverage + 1e-9
        assert 0.0 <= report.relative_loss <= 1.0

    def test_measuring_selection_on_its_own_profile_matches(self):
        program, profile = _artifacts("frag")
        selection = select_minigraphs(program, profile, policy=DEFAULT_POLICY)
        assert measure_selection_on_profile(selection, profile) == pytest.approx(
            selection.coverage)
