"""The experiment-grid engine: declaration, planning, sharding, resume, CLI."""

import json
import pickle

import pytest

from repro.api import RunSpec, Session
from repro.grid import (
    Axis,
    GridError,
    GridSpec,
    cell_key,
    get_grid,
    grid_names,
    plan_grid,
)
from repro.minigraph.policies import DEFAULT_POLICY, INTEGER_POLICY

BUDGET = 1_500


def _two_axis_grid(benchmarks=("bitcount", "crc"), budget=BUDGET,
                   exclude=()):
    axes = (Axis("benchmark", tuple(benchmarks)),
            Axis("policy", ("int-mem", "int", "baseline")))

    def build(point):
        policy = {"int-mem": DEFAULT_POLICY, "int": INTEGER_POLICY,
                  "baseline": None}[point["policy"]]
        return RunSpec(benchmark=point["benchmark"], budget=budget,
                       policy=policy)

    return GridSpec(name="test-grid", axes=axes, build=build,
                    exclude=tuple(exclude))


def _row_fingerprint(rows):
    """Order-normalized, bit-exact content of a row list."""
    return pickle.dumps([(row.index, sorted(row.labels.items()),
                          row.spec_hash, row.coverage, row.baseline_ipc,
                          row.ipc, row.speedup, row.cycles,
                          row.baseline_cycles, row.templates)
                         for row in sorted(rows, key=lambda row: row.index)])


class TestGridSpec:
    def test_lazy_deterministic_expansion(self):
        grid = _two_axis_grid()
        cells = list(grid.cells())
        assert [cell.index for cell in cells] == list(range(6))
        assert cells[0].labels == {"benchmark": "bitcount", "policy": "int-mem"}
        assert cells[-1].labels == {"benchmark": "crc", "policy": "baseline"}
        assert grid.shape == (2, 3) and grid.point_count == 6

    def test_exclude_predicates_drop_points(self):
        grid = _two_axis_grid(
            exclude=[lambda point: point["policy"] == "int"])
        labels = [cell.labels["policy"] for cell in grid.cells()]
        assert "int" not in labels and len(labels) == 4
        # Indices stay dense over the included cells.
        assert [cell.index for cell in grid.cells()] == list(range(4))

    def test_builder_none_excludes_the_point(self):
        base = _two_axis_grid()

        def build(point):
            if point["policy"] == "baseline":
                return None
            return base.build(point)

        grid = GridSpec(name="g", axes=base.axes, build=build)
        assert all(cell.labels["policy"] != "baseline"
                   for cell in grid.cells())

    def test_malformed_grids_are_rejected(self):
        with pytest.raises(GridError, match="no values"):
            Axis("benchmark", ())
        with pytest.raises(GridError, match="duplicate values"):
            Axis("benchmark", ("a", "a"))
        with pytest.raises(GridError, match="no axes"):
            GridSpec(name="g", axes=(), build=lambda point: None)
        with pytest.raises(GridError, match="duplicate axis"):
            GridSpec(name="g", axes=(Axis("a", (1,)), Axis("a", (2,))),
                     build=lambda point: None)


class TestPlanner:
    def test_stage_and_compile_grouping(self):
        plan = plan_grid(_two_axis_grid())
        # One stage per benchmark, one front-end compile per real policy.
        assert plan.stage_count == 2
        assert plan.cell_count == 6
        assert plan.frontend_compiles == 4  # 2 benchmarks x 2 policies
        assert plan.dedup_ratio == pytest.approx(3.0)
        for stage in plan.stages:
            # Baseline cells ride the stage without a compile group of work.
            policies = [group.policy_key for group in stage.groups]
            assert policies.count(None) == 1

    def test_plan_preserves_cell_order_within_stage_sorting(self):
        plan = plan_grid(_two_axis_grid())
        assert sorted(cell.index for cell in plan.cells()) == list(range(6))

    def test_shards_partition_the_stages(self):
        plan = plan_grid(_two_axis_grid(("bitcount", "crc", "frag")))
        shard0 = plan.take_shard(0, 2)
        shard1 = plan.take_shard(1, 2)
        indices0 = {cell.index for cell in shard0.cells()}
        indices1 = {cell.index for cell in shard1.cells()}
        assert indices0 | indices1 == {cell.index for cell in plan.cells()}
        assert not indices0 & indices1
        assert shard0.describe()["shard"] == "0/2"

    def test_shard_bounds_are_validated(self):
        plan = plan_grid(_two_axis_grid())
        with pytest.raises(GridError, match="out of range"):
            plan.take_shard(2, 2)
        with pytest.raises(GridError, match="positive"):
            plan.take_shard(0, 0)


class TestEngine:
    def test_rows_match_direct_session_runs(self):
        grid = _two_axis_grid()
        session = Session()
        rows = list(session.run_grid(grid, workers=0))
        assert [row.index for row in rows] == list(range(6))
        reference = Session()
        for row, cell in zip(rows, grid.cells()):
            artifacts = reference.run(cell.spec)
            assert row.ipc == artifacts.timing.ipc
            assert row.baseline_ipc == artifacts.baseline_timing.ipc
            assert row.coverage == artifacts.coverage
            assert row.spec_hash == cell.spec.spec_hash
            assert not row.resumed

    def test_resume_serves_every_stored_row(self):
        grid = _two_axis_grid()
        session = Session()
        first = list(session.run_grid(grid, workers=0))
        simulations = session.stats.simulations
        second = list(session.run_grid(grid, resume=True, workers=0))
        assert all(row.resumed for row in second)
        assert session.stats.simulations == simulations  # no new work
        assert _row_fingerprint(first) == _row_fingerprint(second)

    def test_without_resume_rows_are_recomputed_from_stage_cache(self):
        session = Session()
        grid = _two_axis_grid(("bitcount",))
        list(session.run_grid(grid, workers=0))
        rows = list(session.run_grid(grid, workers=0))
        # Stage artifacts hit the store, but rows are rebuilt (not resumed).
        assert all(not row.resumed for row in rows)

    def test_sharded_union_with_resume_equals_unsharded(self, tmp_path):
        grid = _two_axis_grid(("bitcount", "crc", "frag"))
        full = list(Session(cache_dir=tmp_path / "full")
                    .run_grid(grid, workers=0))
        shard_dir = tmp_path / "sharded"
        rows0 = list(Session(cache_dir=shard_dir)
                     .run_grid(grid, shard=(0, 2), workers=0))
        rows1 = list(Session(cache_dir=shard_dir)
                     .run_grid(grid, shard=(1, 2), workers=0))
        union = list(Session(cache_dir=shard_dir)
                     .run_grid(grid, resume=True, workers=0))
        assert all(row.resumed for row in union)
        assert _row_fingerprint(rows0 + rows1) == _row_fingerprint(full)
        assert _row_fingerprint(union) == _row_fingerprint(full)

    def test_pool_execution_matches_serial(self):
        grid = _two_axis_grid(("bitcount", "crc"))
        serial = list(Session().run_grid(grid, workers=0))
        parallel_session = Session()
        parallel = list(parallel_session.run_grid(grid, workers=2))
        assert _row_fingerprint(serial) == _row_fingerprint(parallel)
        # Worker accounting merged back into the parent session.
        assert parallel_session.stats.simulations > 0

    def test_duplicate_geometry_cells_resume_with_their_own_labels(self):
        """Cells with identical run identity but different machine display
        names share one row artifact; resumed rows must still carry the
        cell's own names, bit-identical to the fresh run."""
        from repro.experiments.fig8_amplification import figure8_grid
        grid = figure8_grid(benchmarks=("bitcount",), budget=BUDGET,
                            register_sizes=(164,), variants=("6-wide",),
                            modes=("baseline",))
        session = Session()
        fresh = list(session.run_grid(grid, workers=0))
        resumed = list(session.run_grid(grid, resume=True, workers=0))
        assert [row.machine for row in fresh] == \
            ["baseline-6wide-prf164", "baseline-6wide"]
        for before, after in zip(fresh, resumed):
            assert after.resumed
            assert before.as_dict() | {"resumed": True} == after.as_dict()

    def test_cell_keys_are_version_scoped(self):
        spec = RunSpec(benchmark="bitcount", budget=BUDGET)
        assert cell_key(spec, "1") != cell_key(spec, "2")
        assert cell_key(spec, "1") == cell_key(spec, "1")

    def test_row_as_dict_is_json_clean(self):
        session = Session()
        grid = _two_axis_grid(("bitcount",))
        row = next(iter(session.run_grid(grid, workers=0)))
        data = json.loads(json.dumps(row.as_dict()))
        assert data["benchmark"] == "bitcount"
        assert data["point"]["policy"] == "int-mem"
        assert data["machine_hash"]


class TestCatalog:
    def test_builtin_grids_are_registered(self):
        assert {"mini", "fig6", "fig8"} <= set(grid_names())

    def test_unknown_grid_is_actionable(self):
        with pytest.raises(GridError, match="unknown grid"):
            get_grid("fig99")

    def test_fig6_grid_cells_carry_figure_machines(self):
        definition = get_grid("fig6")
        grid = definition.build(benchmarks=("bitcount",), budget=BUDGET)
        cells = list(grid.cells())
        assert [cell.labels["config"] for cell in cells] == \
            ["int", "int+collapse", "int-mem", "int-mem+collapse"]
        machines = [cell.spec.resolved_machine for cell in cells]
        assert machines[0].alu_pipelines == 2
        assert machines[1].collapsing_alu_pipelines
        assert machines[2].sliding_window_scheduler
        baselines = {cell.spec.resolved_baseline_machine.resolve()
                     for cell in cells}
        assert len(baselines) == 1  # one shared reference machine shape

    def test_fig8_grid_panels_split_by_variant(self):
        definition = get_grid("fig8")
        grid = definition.build(benchmarks=("bitcount",), budget=BUDGET)
        variants = [value for value in grid.axis("variant").values]
        assert variants[:4] == ["prf164", "prf144", "prf124", "prf104"] or \
            tuple(variants[:4]) == ("prf164", "prf144", "prf124", "prf104")
        assert "2-cycle-sched" in variants


class TestCli:
    def test_grid_list(self, capsys):
        from repro.api.cli import main
        assert main(["grid", "--list"]) == 0
        out = capsys.readouterr().out
        assert "mini" in out and "fig6" in out

    def test_grid_requires_a_name(self, capsys):
        from repro.api.cli import main
        assert main(["grid"]) == 2

    def test_grid_rejects_bad_shard(self, capsys):
        from repro.api.cli import main
        assert main(["--no-disk-cache", "grid", "--name", "mini",
                     "--shard", "nope"]) == 2
        assert "--shard expects" in capsys.readouterr().err

    def test_mini_grid_end_to_end_with_jsonl_and_resume(self, tmp_path, capsys):
        from repro.api.cli import main
        cache = str(tmp_path / "cache")
        output = str(tmp_path / "rows.jsonl")
        base = ["--cache-dir", cache, "--json", "grid", "--name", "mini",
                "--budget", str(BUDGET), "--workers", "0",
                "--output", output, "--resume"]
        assert main(base) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cells"] == 4 and first["resumed"] == 0
        lines = [json.loads(line) for line in
                 open(output, encoding="utf-8")]
        assert len(lines) == 4
        assert lines[0]["point"] == {"benchmark": "bitcount",
                                     "policy": "int-mem"}
        # Second pass: 100% served from the row artifacts.
        assert main(base) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["executed"] == 0
        assert second["resumed"] == second["cells"] == 4

    def test_grid_csv_output(self, tmp_path, capsys):
        import csv
        from repro.api.cli import main
        output = str(tmp_path / "rows.csv")
        assert main(["--no-disk-cache", "grid", "--name", "mini",
                     "--budget", str(BUDGET), "--workers", "0",
                     "--benchmarks", "bitcount",
                     "--output", output, "--no-table"]) == 0
        capsys.readouterr()
        with open(output, encoding="utf-8", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["benchmark"] == "bitcount"
        assert rows[0]["policy"] == "int-mem"

    def test_grid_shard_runs_subset(self, tmp_path, capsys):
        from repro.api.cli import main
        assert main(["--cache-dir", str(tmp_path), "--json", "grid",
                     "--name", "mini", "--budget", str(BUDGET),
                     "--workers", "0", "--shard", "0/2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["shard"] == "0/2"
        assert payload["cells"] == 2

    def test_cache_prune_evicts_stale_versions(self, tmp_path, capsys):
        from repro.api.cli import main
        from repro.api.store import ArtifactStore
        stale = ArtifactStore(tmp_path, version="0.0.0-old")
        stale.put("gridcell-dead", {"ipc": 1.0})
        stale.close()   # the old-version process exited; its lock is gone
        live = ArtifactStore(tmp_path, version=_current_version())
        live.put("gridcell-live", {"ipc": 2.0})
        assert main(["--cache-dir", str(tmp_path), "--json",
                     "cache", "prune"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pruned"] == 1
        reader = ArtifactStore(tmp_path, version=_current_version())
        assert reader.get("gridcell-live") == {"ipc": 2.0}
        info = reader.info()
        assert info.stale_entries == 0 and info.disk_entries == 1

    def test_cache_info_reports_stale_breakdown(self, tmp_path, capsys):
        from repro.api.cli import main
        from repro.api.store import ArtifactStore
        ArtifactStore(tmp_path, version="0.0.0-old").put("k", 1)
        assert main(["--cache-dir", str(tmp_path), "--json",
                     "cache", "info"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stale_entries"] == 1
        assert payload["version"] == _current_version()


def _current_version():
    import repro
    return repro.__version__
