"""Tests for the static program model: programs, basic blocks, CFG, liveness."""

import pytest

from repro.isa.instruction import Instruction
from repro.program import (
    BlockIndex,
    ControlFlowGraph,
    Program,
    ProgramError,
    analyze_program_liveness,
    average_block_size,
    split_basic_blocks,
)

LOOP_SOURCE = """
start:
  ldi r1, 4
  clr r2
loop:
  addqi r2,1,r2
  subqi r1,1,r1
  bne r1,loop
  halt
"""


@pytest.fixture
def loop_program():
    return Program.from_assembly("loop", LOOP_SOURCE)


class TestProgram:
    def test_pcs_and_indexing(self, loop_program):
        assert loop_program.entry_pc == loop_program.text_base
        for index in range(len(loop_program)):
            pc = loop_program.pc_of(index)
            assert loop_program.index_of(pc) == index
            assert loop_program.contains_pc(pc)

    def test_branch_targets_resolved(self, loop_program):
        branch = [insn for insn in loop_program if insn.is_branch][0]
        assert branch.imm == loop_program.labels["loop"]

    def test_bad_pc_raises(self, loop_program):
        with pytest.raises(ProgramError):
            loop_program.index_of(loop_program.text_base + 2)
        with pytest.raises(ProgramError):
            loop_program.index_of(loop_program.end_pc)

    def test_undefined_target_raises(self):
        with pytest.raises(ProgramError):
            Program("bad", [Instruction("br", target="nowhere"), Instruction("halt")])

    def test_empty_program_raises(self):
        with pytest.raises(ProgramError):
            Program("empty", [])

    def test_disassemble_contains_labels(self, loop_program):
        text = loop_program.disassemble()
        assert "loop:" in text
        assert "bne" in text

    def test_static_counts(self, loop_program):
        counts = loop_program.static_counts()
        assert counts["bne"] == 1
        assert counts["halt"] == 1

    def test_with_instructions_preserves_data(self, loop_program):
        clone = loop_program.with_instructions(list(loop_program.instructions))
        assert clone.labels == loop_program.labels
        assert clone.entry_pc == loop_program.entry_pc


class TestBasicBlocks:
    def test_block_boundaries(self, loop_program):
        blocks = split_basic_blocks(loop_program)
        # Blocks: [start..clr], [loop body with bne], [halt]
        assert len(blocks) == 3
        assert blocks[1].terminator.is_branch
        assert blocks[2].terminator.is_halt

    def test_block_index_lookup(self, loop_program):
        index = BlockIndex(loop_program)
        block = index.block_of_pc(loop_program.labels["loop"])
        assert block.start_pc == loop_program.labels["loop"]

    def test_average_block_size(self, loop_program):
        blocks = split_basic_blocks(loop_program)
        assert average_block_size(blocks) == pytest.approx(6 / 3)

    def test_nops_excluded_from_useful_size(self):
        program = Program.from_assembly("nops", "nop\nnop\naddqi r1,1,r1\nhalt\n")
        blocks = split_basic_blocks(program)
        assert blocks[0].useful_size == 2  # addqi + halt counted, nops not
        assert blocks[0].size == 4


class TestCfg:
    def test_loop_has_back_edge(self, loop_program):
        cfg = ControlFlowGraph(loop_program)
        headers = cfg.loop_headers()
        loop_block = cfg.block_index.block_of_pc(loop_program.labels["loop"])
        assert loop_block.block_id in headers

    def test_successors_of_branch_block(self, loop_program):
        cfg = ControlFlowGraph(loop_program)
        loop_block = cfg.block_index.block_of_pc(loop_program.labels["loop"])
        successors = cfg.successors(loop_block.block_id)
        assert loop_block.block_id in successors  # taken edge back to itself
        assert len(successors) == 2               # plus fall-through to halt

    def test_entry_block_and_reachability(self, loop_program):
        cfg = ControlFlowGraph(loop_program)
        reachable = cfg.reachable_blocks()
        assert cfg.entry_block().block_id in reachable
        assert len(reachable) == 3

    def test_block_statistics(self, loop_program):
        stats = ControlFlowGraph(loop_program).block_statistics()
        assert stats["num_blocks"] == 3
        assert stats["conditional_block_fraction"] > 0


class TestLiveness:
    def test_loop_counter_is_live_across_back_edge(self, loop_program):
        liveness = analyze_program_liveness(loop_program)
        cfg = ControlFlowGraph(loop_program)
        loop_block = cfg.block_index.block_of_pc(loop_program.labels["loop"])
        # r1 (counter) and r2 (accumulator) are live into the loop block.
        assert 1 in liveness.live_in[loop_block.block_id]
        assert 2 in liveness.live_in[loop_block.block_id]

    def test_dead_temporary_is_not_live_out(self):
        source = """
        start:
          addqi r1,1,r5
          addqi r5,1,r2
          bne r2,start
          halt
        """
        program = Program.from_assembly("t", source)
        liveness = analyze_program_liveness(program)
        cfg = ControlFlowGraph(program)
        block = cfg.block_index.block_of_pc(program.labels["start"])
        # r5 is recomputed before use on every path, so it is not live into
        # the block.
        assert 5 not in liveness.live_in[block.block_id]

    def test_live_after_walks_backward(self, loop_program):
        liveness = analyze_program_liveness(loop_program)
        cfg = ControlFlowGraph(loop_program)
        loop_block = cfg.block_index.block_of_pc(loop_program.labels["loop"])
        live_after_first = liveness.live_after(loop_block, 0)
        assert 1 in live_after_first  # counter still read by subqi/bne
