"""Tests for the functional simulator and memory model."""

import pytest

from repro.program import Program
from repro.sim import Memory, MemoryError_, run_program
from repro.sim.functional import SimulationError


class TestMemory:
    def test_quadword_round_trip(self):
        memory = Memory()
        memory.store(0x1000, 0x1122334455667788, 8)
        assert memory.load(0x1000, 8) == 0x1122334455667788

    def test_sub_word_access(self):
        memory = Memory()
        memory.store(0x2000, 0xFF, 1)
        memory.store(0x2004, 0x1234, 4)
        assert memory.load(0x2000, 1, signed=False) == 0xFF
        assert memory.load(0x2000, 1, signed=True) == -1
        assert memory.load(0x2004, 4) == 0x1234

    def test_misaligned_access_raises(self):
        memory = Memory()
        with pytest.raises(MemoryError_):
            memory.load(0x1001, 4)
        with pytest.raises(MemoryError_):
            memory.store(0x1002, 0, 8)

    def test_unsupported_size_raises(self):
        with pytest.raises(MemoryError_):
            Memory().load(0x1000, 3)

    def test_from_image(self):
        memory = Memory.from_image({0x100: 7, 0x108: 9})
        assert memory.load_word(0x100) == 7
        assert memory.load_word(0x108) == 9

    def test_checksum_changes_with_contents(self):
        a = Memory.from_image({0x100: 1})
        b = Memory.from_image({0x100: 2})
        assert a.checksum() != b.checksum()


def _run(source, **kwargs):
    program = Program.from_assembly("t", source)
    return run_program(program, **kwargs)


class TestFunctionalExecution:
    def test_arithmetic_chain(self):
        result = _run("""
          ldi r1, 6
          ldi r2, 7
          mulq r1,r2,r3
          addqi r3,900,r4
          halt
        """)
        assert result.register(3) == 42
        assert result.register(4) == 942
        assert result.halted

    def test_compare_and_branch_loop(self):
        result = _run("""
          clr r1
          clr r2
        loop:
          addqi r1,1,r1
          addq r2,r1,r2
          cmplti r1,5,r3
          bne r3,loop
          halt
        """)
        assert result.register(1) == 5
        assert result.register(2) == 15

    def test_memory_round_trip(self):
        result = _run("""
        .data buffer 0 0 0 0
          la r1, buffer
          ldi r2, 77
          stq r2,8(r1)
          ldq r3,8(r1)
          halt
        """)
        assert result.register(3) == 77

    def test_loads_use_initial_data(self):
        result = _run("""
        .data values 5 10 15
          la r1, values
          ldq r2,16(r1)
          halt
        """)
        assert result.register(2) == 15

    def test_shift_and_mask_idiom(self):
        result = _run("""
          ldi r1, 0x1234
          srli r1,4,r2
          andi r2,0xff,r3
          halt
        """)
        assert result.register(3) == 0x23

    def test_signed_comparison(self):
        result = _run("""
          ldi r1, 5
          subqi r1,10,r2
          cmplt r2,r1,r3
          blt r2,neg
          clr r4
          halt
        neg:
          ldi r4, 1
          halt
        """)
        assert result.register(3) == 1
        assert result.register(4) == 1

    def test_budget_expiry_reported(self):
        result = _run("""
        forever:
          addqi r1,1,r1
          br forever
        """, max_instructions=50)
        assert not result.halted
        assert result.instructions_executed == 50

    def test_profile_counts_blocks(self):
        result = _run("""
          clr r1
        loop:
          addqi r1,1,r1
          cmplti r1,4,r2
          bne r2,loop
          halt
        """)
        # The loop body block executed 4 times.
        assert 4 in result.profile.counts.values()
        assert result.profile.dynamic_instructions == result.instructions_executed

    def test_trace_records_control_and_memory(self):
        result = _run("""
        .data buffer 3
          la r1, buffer
          ldq r2,0(r1)
          beq r2,skip
          addqi r2,1,r2
        skip:
          halt
        """)
        entries = list(result.trace)
        load_entry = next(entry for entry in entries if entry.is_load)
        assert load_entry.effective_address is not None
        branch_entry = next(entry for entry in entries if entry.is_control)
        assert branch_entry.taken is False

    def test_nops_are_skipped_silently(self):
        result = _run("nop\nnop\nldi r1, 3\nhalt\n")
        assert result.register(1) == 3
        assert result.entries_committed == 2  # ldi + halt

    def test_execution_leaving_text_raises(self):
        program = Program.from_assembly("fall", "addqi r1,1,r1\naddqi r1,1,r1\n"
                                                "addqi r1,1,r1\naddqi r1,1,r1\n")
        with pytest.raises(SimulationError):
            run_program(program)

    def test_call_and_return(self):
        result = _run("""
          jsr r26, helper
          addqi r3,100,r4
          halt
        helper:
          ldi r3, 11
          ret r26
        """)
        assert result.register(3) == 11
        assert result.register(4) == 111

    def test_checksum_deterministic(self):
        source = """
          ldi r1, 9
          addqi r1,1,r2
          halt
        """
        assert _run(source).checksum() == _run(source).checksum()
