#!/usr/bin/env python3
"""Regenerate ``timing_stats.json`` from the current timing simulator.

Run this only when a deliberate modelling change (not a performance
refactor) is supposed to move the numbers; the diff of the JSON then
documents exactly which statistics moved.
"""

import json
from pathlib import Path

from repro.api import RunSpec, Session
from repro.workloads import REGISTRY

BUDGET = 6000


def main() -> None:
    session = Session()
    golden = {}
    for name in REGISTRY.names("embedded"):
        artifacts = session.run(RunSpec(benchmark=name, budget=BUDGET))
        golden[name] = {
            "budget": BUDGET,
            "baseline": artifacts.baseline_timing.as_dict(),
            "minigraph": artifacts.timing.as_dict(),
            "coverage": artifacts.coverage,
        }
    path = Path(__file__).parent / "timing_stats.json"
    path.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"wrote {len(golden)} benchmarks to {path}")


if __name__ == "__main__":
    main()
