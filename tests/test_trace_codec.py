"""Tests for the columnar trace representation and its binary codec.

Covers the property-based round trip columnar <-> :class:`TraceEntry`
objects (including ``None`` effective addresses/mgids, ``None`` branch
outcomes and empty traces), the versioned header checks, and the artifact
store's cross-codec behaviour (binary trace entries next to pickle entries,
unknown codec versions degrading to cache misses).
"""

import pickle
import struct

import pytest
from hypothesis import given, strategies as st

from repro.api.store import MISS, ArtifactStore
from repro.sim.trace import (
    TRACE_CODEC_VERSION,
    TRACE_MAGIC,
    Trace,
    TraceCodecError,
    TraceEntry,
    UnknownTraceCodecVersion,
    decode_trace,
    encode_trace,
    is_trace_blob,
)

_WORD = st.integers(min_value=0, max_value=(1 << 64) - 1)

_entries = st.builds(
    TraceEntry,
    pc=_WORD,
    index=st.integers(min_value=0, max_value=(1 << 32) - 1),
    size=st.integers(min_value=0, max_value=(1 << 16) - 1),
    next_pc=_WORD,
    is_control=st.booleans(),
    taken=st.none() | st.booleans(),
    is_load=st.booleans(),
    is_store=st.booleans(),
    effective_address=st.none() | _WORD,
    mgid=st.none() | st.integers(min_value=0, max_value=(1 << 31) - 1),
)

_entry_lists = st.lists(_entries, max_size=40)


class TestColumnarRoundTrip:
    @given(entries=_entry_lists)
    def test_entries_survive_the_packed_columns(self, entries):
        trace = Trace(entries)
        assert len(trace) == len(entries)
        assert list(trace) == entries
        assert [trace[i] for i in range(len(entries))] == entries

    @given(entries=_entry_lists)
    def test_binary_codec_round_trip(self, entries):
        trace = Trace(entries)
        blob = encode_trace(trace)
        assert is_trace_blob(blob)
        assert list(decode_trace(blob)) == entries

    @given(entries=_entry_lists)
    def test_pickle_ships_the_packed_columns(self, entries):
        trace = Trace(entries)
        assert list(pickle.loads(pickle.dumps(trace))) == entries

    @given(entries=_entry_lists)
    def test_summary_statistics_match_entry_views(self, entries):
        trace = Trace(entries)
        assert trace.original_instruction_count() == sum(e.size for e in entries)
        assert trace.pipeline_slot_count() == len(entries)
        assert trace.handle_count() == sum(1 for e in entries if e.is_handle)
        assert trace.load_count() == sum(1 for e in entries if e.is_load)
        assert trace.store_count() == sum(1 for e in entries if e.is_store)
        assert trace.control_count() == sum(1 for e in entries if e.is_control)
        assert trace.taken_branch_count() == sum(1 for e in entries if e.taken)

    def test_uncompressed_codec_round_trip(self):
        entries = [TraceEntry(0x1000, 0, 1, 0x1004),
                   TraceEntry(0x1004, 1, 1, 0x1000, is_control=True, taken=True)]
        blob = encode_trace(Trace(entries), compress=False)
        assert list(decode_trace(blob)) == entries

    def test_empty_trace_round_trip(self):
        blob = encode_trace(Trace())
        decoded = decode_trace(blob)
        assert len(decoded) == 0 and list(decoded) == []
        assert decoded.original_instruction_count() == 0
        assert decoded.dynamic_coverage() == 0.0

    def test_slicing_and_negative_indexing(self):
        entries = [TraceEntry(0x1000 + 4 * i, i, 1, 0x1004 + 4 * i)
                   for i in range(5)]
        trace = Trace(entries)
        assert trace[-1] == entries[-1]
        assert trace[1:4] == entries[1:4]


class TestSummaryCache:
    def test_counts_are_cached_and_append_invalidates(self):
        trace = Trace([TraceEntry(0x1000, 0, 1, 0x1004)])
        assert trace.original_instruction_count() == 1
        assert trace.pipeline_slot_count() == 1
        trace.append(TraceEntry(0x1004, 1, 3, 0x1008, mgid=2))
        assert trace.original_instruction_count() == 4
        assert trace.pipeline_slot_count() == 2
        assert trace.handle_count() == 1
        assert trace.dynamic_coverage() == pytest.approx(2 / 4)


class TestCodecValidation:
    def _blob(self):
        return encode_trace(Trace([TraceEntry(0x1000, 0, 1, 0x1004),
                                   TraceEntry(0x1004, 1, 1, 0x1008,
                                              is_load=True,
                                              effective_address=0x2000)]))

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceCodecError):
            decode_trace(b"NOPE" + self._blob()[4:])

    def test_truncated_blob_rejected(self):
        with pytest.raises(TraceCodecError):
            decode_trace(self._blob()[:10])

    def test_payload_length_mismatch_rejected(self):
        with pytest.raises(TraceCodecError):
            decode_trace(self._blob() + b"extra")

    def test_unknown_version_is_its_own_error(self):
        blob = bytearray(self._blob())
        # The version field is the u16 right after the 4-byte magic.
        struct.pack_into("<H", blob, 4, TRACE_CODEC_VERSION + 7)
        with pytest.raises(UnknownTraceCodecVersion) as excinfo:
            decode_trace(bytes(blob))
        assert excinfo.value.version == TRACE_CODEC_VERSION + 7
        assert isinstance(excinfo.value, TraceCodecError)


class TestStoreCrossCodec:
    def _trace(self):
        return Trace([TraceEntry(0x1000, 0, 1, 0x1004),
                      TraceEntry(0x1004, 1, 2, 0x1000, is_control=True,
                                 taken=True, mgid=3),
                      TraceEntry(0x1000, 0, 1, 0x1004, is_store=True,
                                 effective_address=0x2008)])

    def test_bare_traces_are_stored_binary_and_read_back(self, tmp_path):
        writer = ArtifactStore(tmp_path)
        trace = self._trace()
        writer.put("trace-abc", trace)
        (path,) = tmp_path.glob("*.pkl")
        assert path.read_bytes()[:4] == TRACE_MAGIC
        reader = ArtifactStore(tmp_path)  # fresh store: no memory layer
        assert list(reader.get("trace-abc")) == list(trace)

    def test_pickle_entries_containing_traces_still_read(self, tmp_path):
        # Cross-codec: an artifact embedding a trace goes through pickle
        # (whose Trace payload is the same flat binary blob) and must load
        # from the same directory as binary entries.
        store = ArtifactStore(tmp_path)
        trace = self._trace()
        store.put("trace-bin", trace)
        store.put("pair-pickle", {"trace": trace, "label": "embedded"})
        reader = ArtifactStore(tmp_path)
        assert list(reader.get("pair-pickle")["trace"]) == list(trace)
        assert list(reader.get("trace-bin")) == list(trace)

    def test_unknown_codec_version_is_a_miss_not_a_crash(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("trace-future", self._trace())
        (path,) = tmp_path.glob("*.pkl")
        blob = bytearray(path.read_bytes())
        struct.pack_into("<H", blob, 4, TRACE_CODEC_VERSION + 1)
        path.write_bytes(bytes(blob))
        reader = ArtifactStore(tmp_path)
        assert reader.get("trace-future") is MISS
        assert reader.stats.misses == 1
        # The foreign-version entry is left for the build that wrote it.
        assert path.exists()

    def test_corrupt_trace_entry_is_dropped_and_missed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("trace-corrupt", self._trace())
        (path,) = tmp_path.glob("*.pkl")
        path.write_bytes(path.read_bytes()[:-3])
        reader = ArtifactStore(tmp_path)
        assert reader.get("trace-corrupt") is MISS
        assert not path.exists()

    def test_put_serialization_failure_cleans_temp_and_degrades(self, tmp_path):
        store = ArtifactStore(tmp_path)
        unpicklable = lambda: None  # noqa: E731 - locals cannot be pickled
        store.put("bad-artifact", unpicklable)
        # Memory layer still serves the value; nothing (tmp or entry) on disk.
        assert store.get("bad-artifact") is unpicklable
        assert list(tmp_path.iterdir()) == []
        reader = ArtifactStore(tmp_path)
        assert reader.get("bad-artifact") is MISS
