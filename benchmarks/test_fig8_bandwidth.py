"""Regenerates Figure 8 (bottom): bandwidth reduction and scheduler pipelining (E8)."""

import pytest

from repro.experiments import run_bandwidth_panel

from conftest import full_sweep, write_result


@pytest.mark.benchmark(group="figure8")
def test_fig8_bandwidth_and_scheduler(benchmark, runner, benchmarks):
    names = benchmarks if full_sweep() else benchmarks[:8]
    table = benchmark.pedantic(
        lambda: run_bandwidth_panel(runner, benchmarks=names),
        rounds=1, iterations=1)
    write_result("fig8_bandwidth", table.render())

    for name in names:
        # Narrowing the pipeline never speeds up the baseline.
        assert table.value(name, "baseline@4-wide") <= table.value(name, "baseline@6-wide") + 1e-9
    # Mini-graphs restore part of the 4-wide loss and help tolerate a 2-cycle
    # scheduler, on average.
    assert table.overall_mean("int-mem@4-wide") >= table.overall_mean("baseline@4-wide") - 0.05
    assert table.overall_mean("int-mem@2-cycle-sched") >= \
        table.overall_mean("baseline@2-cycle-sched") - 0.05
    # Restoring the execution width (4-wide + 6-exec) helps the mini-graph
    # machine at least as much as the plain 4-wide machine.
    assert table.overall_mean("int-mem@4-wide+6-exec") >= \
        table.overall_mean("int-mem@4-wide") - 0.05
