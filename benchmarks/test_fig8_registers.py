"""Regenerates Figure 8 (top): register-file reduction compensation (E7)."""

import pytest

from repro.experiments import run_register_panel

from conftest import full_sweep, write_result


@pytest.mark.benchmark(group="figure8")
def test_fig8_register_file(benchmark, runner, benchmarks):
    names = benchmarks if full_sweep() else benchmarks[:8]
    table = benchmark.pedantic(
        lambda: run_register_panel(runner, benchmarks=names,
                                   register_sizes=(164, 144, 124, 104)),
        rounds=1, iterations=1)
    write_result("fig8_registers", table.render())

    for name in names:
        # Shrinking the register file never speeds up the baseline.
        assert table.value(name, "baseline@104") <= table.value(name, "baseline@164") + 1e-9
    # On average, mini-graphs at 124 registers recover performance relative to
    # the shrunken baseline (the paper: they compensate for ~40% reductions).
    minigraph_mean = table.overall_mean("int-mem@124")
    baseline_mean = table.overall_mean("baseline@124")
    assert minigraph_mean >= baseline_mean - 0.05
