"""Regenerates Figure 5: mini-graph coverage (E1, E2, E3)."""

import pytest

from repro.experiments import run_coverage_panel, run_domain_panel

from conftest import write_result


@pytest.mark.benchmark(group="figure5")
def test_fig5_integer(benchmark, runner, benchmarks):
    """Figure 5 top panel: application-specific integer mini-graphs."""
    result = benchmark.pedantic(
        lambda: run_coverage_panel(runner, integer_only=True, benchmarks=benchmarks,
                                   mgt_sizes=(32, 128, 512, 2048),
                                   graph_sizes=(2, 3, 4, 8)),
        rounds=1, iterations=1)
    write_result("fig5_integer", result.table.render())
    for name in benchmarks:
        assert 0.0 <= result.table.value(name, "512e/4i") <= 0.6


@pytest.mark.benchmark(group="figure5")
def test_fig5_integer_memory(benchmark, runner, benchmarks):
    """Figure 5 middle panel: application-specific integer-memory mini-graphs."""
    result = benchmark.pedantic(
        lambda: run_coverage_panel(runner, integer_only=False, benchmarks=benchmarks,
                                   mgt_sizes=(32, 128, 512, 2048),
                                   graph_sizes=(2, 3, 4, 8)),
        rounds=1, iterations=1)
    write_result("fig5_integer_memory", result.table.render())
    integer = run_coverage_panel(runner, integer_only=True, benchmarks=benchmarks,
                                 mgt_sizes=(512,), graph_sizes=(4,))
    # Integer-memory coverage dominates integer coverage (the paper reports
    # roughly a 50% relative increase).
    for name in benchmarks:
        assert result.table.value(name, "512e/4i") >= integer.table.value(name, "512e/4i") - 1e-9


@pytest.mark.benchmark(group="figure5")
def test_fig5_domain(benchmark, runner, benchmarks):
    """Figure 5 bottom panel: domain-specific integer-memory mini-graphs."""
    result = benchmark.pedantic(
        lambda: run_domain_panel(runner, benchmarks=benchmarks, mgt_sizes=(512, 2048)),
        rounds=1, iterations=1)
    write_result("fig5_domain", result.table.render())
    assert result.table.rows
