"""Shared fixtures for the benchmark (experiment regeneration) harness.

Every benchmark regenerates one of the paper's evaluation artifacts (a panel
of Figure 5-8 or one of the textual results of Section 6).  The timing model
is a pure-Python cycle simulator, so the harness runs each benchmark on a
reduced dynamic-instruction budget and, by default, on a representative
subset of kernels per suite; set ``REPRO_BENCH_FULL=1`` to sweep every kernel
with a larger budget (slower but closer to the recorded EXPERIMENTS.md runs).

The rendered result tables are written to ``benchmarks/results/`` so they can
be inspected and compared against EXPERIMENTS.md after a run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentRunner
from repro.workloads import QUICK_BENCHMARKS as _QUICK_BENCHMARKS

#: Representative kernels per suite used by the quick (default) configuration
#: (shared with the ``repro figure`` CLI default).
QUICK_BENCHMARKS = list(_QUICK_BENCHMARKS)

RESULTS_DIR = Path(__file__).parent / "results"


def full_sweep() -> bool:
    """True when the caller asked for the full benchmark sweep."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_budget() -> int:
    """Dynamic-instruction budget per benchmark run."""
    return 25_000 if full_sweep() else 8_000


def bench_benchmarks() -> list[str]:
    """Benchmarks included in the sweep."""
    if full_sweep():
        return ExperimentRunner.benchmarks()
    return list(QUICK_BENCHMARKS)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One shared runner so artifacts (profiles, selections, traces) are reused."""
    return ExperimentRunner(budget=bench_budget())


@pytest.fixture(scope="session")
def benchmarks() -> list[str]:
    return bench_benchmarks()


def write_result(name: str, text: str) -> Path:
    """Persist a rendered result table under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path
