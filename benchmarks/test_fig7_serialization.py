"""Regenerates Figure 7 and the best-policy result (E6, E10)."""

import pytest

from repro.experiments import FIGURE7_BENCHMARKS, run_best_policy, run_figure7

from conftest import full_sweep, write_result


@pytest.mark.benchmark(group="figure7")
def test_fig7_serialization(benchmark, runner):
    result = benchmark.pedantic(
        lambda: run_figure7(runner, benchmarks=FIGURE7_BENCHMARKS),
        rounds=1, iterations=1)
    write_result("fig7_serialization", result.render())
    table = result.table
    # mcf is the paper's replay-loss poster child: removing serialization and
    # replay-vulnerable graphs must not make it worse.
    assert table.value("mcf", "int-mem-noserial-noreplay") >= table.value("mcf", "int-mem") - 0.02


@pytest.mark.benchmark(group="figure7")
def test_best_policy(benchmark, runner, benchmarks):
    names = benchmarks if full_sweep() else benchmarks[:8]
    figure7_default = run_figure7(runner, benchmarks=names)
    result = benchmark.pedantic(
        lambda: run_best_policy(runner, benchmarks=names),
        rounds=1, iterations=1)
    lines = [result.render()]
    write_result("best_policy", "\n".join(lines))
    # Choosing the best policy per benchmark can only improve on any fixed policy.
    for name in names:
        assert result.best_speedup[name] >= figure7_default.table.value(name, "int-mem") - 1e-9
