"""Regenerates the textual results of Section 6: robustness (E4), the
instruction-cache/compression effect (E9) and selected ablations."""

import pytest

from repro.experiments import (
    geometric_mean,
    run_icache_effect,
    run_robustness,
)
from repro.minigraph import DEFAULT_POLICY, select_minigraphs
from repro.minigraph.enumeration import EnumerationLimits, enumerate_minigraphs

from conftest import full_sweep, write_result


@pytest.mark.benchmark(group="extras")
def test_profile_robustness(benchmark, runner, benchmarks):
    names = benchmarks if full_sweep() else benchmarks[:8]
    result = benchmark.pedantic(lambda: run_robustness(runner, benchmarks=names),
                                rounds=1, iterations=1)
    write_result("robustness", result.render())
    # The paper reports ~15% average relative coverage loss across inputs;
    # anything between "no loss" and "half the coverage" matches the shape.
    assert 0.0 <= result.mean_relative_loss <= 0.5


@pytest.mark.benchmark(group="extras")
def test_icache_compression_effect(benchmark, runner):
    spec_names = [name for name in runner.benchmarks("spec")]
    if not full_sweep():
        spec_names = spec_names[:4]
    result = benchmark.pedantic(lambda: run_icache_effect(runner, benchmarks=spec_names),
                                rounds=1, iterations=1)
    write_result("icache_effect", result.render())
    padded = result.table.overall_mean("padded")
    compressed = result.table.overall_mean("compressed")
    # Compression can only help (fewer instruction-cache lines touched).
    assert compressed >= padded - 0.02


@pytest.mark.benchmark(group="ablation")
def test_ablation_selection_order(benchmark, runner, benchmarks):
    """Ablation: greedy coverage-driven selection vs. a small MGT.

    The selection ordering is a design choice worth ablating; the measurable proxy recorded here is how much coverage a
    16-entry MGT retains compared to the 512-entry default, which is exactly
    what greedy ranking by benefit is supposed to maximise.
    """
    names = benchmarks if full_sweep() else benchmarks[:8]

    def run():
        rows = []
        for name in names:
            artifacts = runner.baseline(name)
            full = select_minigraphs(artifacts.program, artifacts.profile,
                                     policy=DEFAULT_POLICY)
            small = select_minigraphs(artifacts.program, artifacts.profile,
                                      policy=DEFAULT_POLICY.with_mgt_entries(16))
            retained = small.coverage / full.coverage if full.coverage else 1.0
            rows.append((name, full.coverage, small.coverage, retained))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["ablation: coverage retained by a 16-entry MGT vs 512 entries"]
    for name, full_cov, small_cov, retained in rows:
        lines.append(f"  {name:20s} full={full_cov:.3f} small={small_cov:.3f} "
                     f"retained={retained * 100.0:.0f}%")
    write_result("ablation_selection", "\n".join(lines))
    mean_retained = geometric_mean([max(row[3], 1e-6) for row in rows])
    assert mean_retained > 0.5


@pytest.mark.benchmark(group="ablation")
def test_ablation_graph_size_limit(benchmark, runner, benchmarks):
    """Ablation: two-instruction mini-graphs carry most of the coverage."""
    names = benchmarks if full_sweep() else benchmarks[:8]

    def run():
        rows = []
        for name in names:
            artifacts = runner.baseline(name)
            limits = EnumerationLimits(max_size=8)
            candidates = enumerate_minigraphs(artifacts.program, limits)
            size2 = select_minigraphs(artifacts.program, artifacts.profile,
                                      policy=DEFAULT_POLICY.with_max_size(2),
                                      candidates=candidates).coverage
            size8 = select_minigraphs(artifacts.program, artifacts.profile,
                                      policy=DEFAULT_POLICY.with_max_size(8),
                                      candidates=candidates).coverage
            rows.append((name, size2, size8))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["ablation: coverage with max size 2 vs max size 8"]
    shares = []
    for name, size2, size8 in rows:
        share = size2 / size8 if size8 else 1.0
        shares.append(share)
        lines.append(f"  {name:20s} size<=2 {size2:.3f}  size<=8 {size8:.3f}  "
                     f"share={share * 100.0:.0f}%")
    write_result("ablation_graph_size", "\n".join(lines))
    # The paper: ~60% of coverage is achieved with 2-instruction graphs.
    assert sum(shares) / len(shares) > 0.4
