"""Regenerates Figure 6: mini-graph performance relative to the baseline (E5)."""

import pytest

from repro.experiments import run_figure6

from conftest import write_result


@pytest.mark.benchmark(group="figure6")
def test_fig6_performance(benchmark, runner, benchmarks):
    result = benchmark.pedantic(
        lambda: run_figure6(runner, benchmarks=benchmarks),
        rounds=1, iterations=1)
    write_result("fig6_performance", result.render())

    table = result.table
    media_gain = table.suite_means("int-mem").get("media", 1.0)
    spec_gain = table.suite_means("int-mem").get("spec", 1.0)
    # Shape checks from the paper: MediaBench benefits the most, SPECint the
    # least; collapsing ALU pipelines never hurt on average.
    assert media_gain >= spec_gain - 0.02
    assert table.overall_mean("int") > 0.95
    assert table.overall_mean("int-mem+collapse") >= table.overall_mean("int-mem") - 0.02
